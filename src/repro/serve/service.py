"""`ProvingService`: the fault-tolerant asyncio front of the prover.

The service puts a *bounded* admission layer between callers and the
CPU-bound Groth16 core so that overload, stragglers and injected faults
all end as **typed** :class:`~repro.serve.jobs.JobResult`\\ s instead of
hangs:

- **Admission control** — a queue-depth cap and an in-flight cap; a
  request that would exceed either is shed immediately with
  :class:`~repro.resilience.errors.AdmissionError` (``error[admission]``,
  never retried by the service).
- **Deadline propagation** — each request carries a time budget that
  becomes a cooperative :class:`~repro.resilience.retry.Deadline` around
  its execution, so the MSM/NTT poll points cancel expired work from
  *inside* the kernels; a request that expires while still queued never
  touches the core at all.  Workers inherit the remaining budget through
  the pool's task context.
- **Retry + circuit breaker** — transient taxonomy faults are re-attempted
  under a seeded :class:`~repro.resilience.retry.RetryPolicy` (async
  backoff; the event loop keeps serving); repeated
  :class:`~repro.resilience.errors.WorkerCrash`\\ es trip a
  :class:`~repro.serve.breaker.CircuitBreaker` that reroutes jobs to the
  serial degradation path (the same kernels `resilient_msm` falls back
  on) until a cooldown probe proves the pool healthy again.
- **Verify coalescing** — verify requests are batched through
  :func:`~repro.groth16.batch.batch_verify` within a small window;
  a failing batch is bisected
  (:func:`~repro.resilience.degrade.batch_verify_bisect`) so exactly the
  poisoned members resolve ``accepted=False`` and everyone else still
  benefits from the folded check.
- **Graceful drain** — :meth:`ProvingService.drain` stops admission,
  lets in-flight jobs finish or deadline-out, then closes the worker
  pool gracefully (``WorkerPool.close(graceful=True)``), which is what
  the CLI ``serve`` verb runs on SIGTERM.
- **Per-request phase tracing** — every transition of a request's life
  marks the job's phase clock (:meth:`~repro.serve.jobs.Job.mark`), so
  each :class:`JobResult` resolves carrying an *additive* latency
  breakdown over :data:`~repro.serve.jobs.PHASES`:
  ``admission -> queue_wait -> coalesce_delay -> retry_backoff ->
  compute -> settle``, with ``repro_serve_phase_<phase>_seconds``
  histograms in the metrics registry and — when the PR 7 worker
  collector is installed — a worker-side split of the compute phase.
  The phases partition the request lifetime by construction, so their
  sum equals ``total_s`` within tolerance on every resolution path;
  the capacity sweep (:mod:`repro.obs.capacity`) diagnoses each
  configuration as queue-, compute- or coalescing-bound from exactly
  this breakdown.

Execution model: one dedicated compute thread (the GIL makes CPU-bound
threads pointless anyway; real parallelism comes from the worker pool
the compute thread fans MSM/NTT chunks out to).  Serializing compute
also makes the process-global resilience slots (deadline, fault
injector, pool) race-free without changing their idiom.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext

from repro import parallel
from repro.obs import metrics
from repro.obs.metrics import TIME_BUCKETS
from repro.resilience import faults
from repro.resilience import retry as resilience
from repro.resilience.errors import (
    AdmissionError,
    ArtifactCorruption,
    ReproError,
    StageTimeout,
    WorkerCrash,
    classify,
    is_retryable,
)
from repro.resilience.retry import RetryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import KINDS, Job, JobResult
from repro.serve.pkcache import PKCache

__all__ = ["ARTIFACT_CACHE", "ProvingService", "SERVE_SITES"]

#: Fault-injection sites checked inside the service's compute closures
#: (the chaos-under-load schedule draws from these plus the kernel sites
#: that prove/verify reach naturally).
SERVE_SITES = ("serve:prove", "serve:verify")

#: Queue sentinel that stops the executor loops.
_STOP = object()

#: Per-process proving-key cache: (curve, workload, size, seed) ->
#: prepared artifacts, so several services in one process (a loadtest
#: then a chaos run, or every cell of a capacity sweep) pay for
#: compile/setup/witness once per cell — LRU-bounded with hit/miss/
#: eviction counters (:mod:`repro.serve.pkcache`).
ARTIFACT_CACHE = PKCache()


class ProvingService:
    """Asyncio proving/verification service over one circuit cell.

    Parameters
    ----------
    curve / size / workload / seed:
        The circuit cell served (one proving key, cached per process).
    workers:
        Worker-pool size for the compute core (``None``/1 = serial).
    max_queue:
        Backlog cap: requests beyond this many *queued* jobs are shed.
    max_inflight:
        Total-outstanding cap (queued + executing): the hard bound on
        requests the service will hold un-resolved at once.
    default_deadline_s:
        Deadline applied to requests that do not carry their own.
    retry:
        :class:`RetryPolicy` for transient faults (seeded from *seed*
        when not given).
    breaker:
        :class:`CircuitBreaker` guarding the worker pool.
    batch_window_s / max_batch:
        Verify-coalescing window and batch-size cap.
    """

    def __init__(self, curve="bn128", size=64, workload="exponentiate",
                 workers=None, max_queue=16, max_inflight=64,
                 default_deadline_s=None, retry=None, breaker=None,
                 batch_window_s=0.005, max_batch=8, seed=0):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.curve = curve
        self.size = size
        self.workload = workload
        self.seed = seed
        self.workers = workers
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self.default_deadline_s = default_deadline_s
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.retry = retry or RetryPolicy(max_attempts=3, seed=seed)
        self.breaker = breaker or CircuitBreaker()
        self.counts = {
            "submitted": 0, "ok": 0, "rejected": 0, "shed": 0,
            "timeout": 0, "error": 0, "retries": 0, "degraded": 0,
            "verify_batches": 0, "verify_coalesced": 0, "isolated_bad": 0,
        }
        self._pool = None
        self._executor = None
        self._prove_q = None
        self._verify_q = None
        self._tasks = []
        self._outstanding = 0
        self._next_id = 0
        self._batch_seq = 0
        self._started = False
        self._draining = False
        self._t0 = 0.0
        # Artifacts of the served cell (filled by start()).
        self._curve_obj = None
        self._circuit = None
        self._pk = None
        self._vk = None
        self._witness = None
        self._publics = None
        self._proof0 = None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self):
        """Build (or fetch from the per-process cache) the circuit cell's
        artifacts and start the executor loops.  Idempotent."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        # Timeline origin for JobResult.start_s (trace-export x axis).
        self._t0 = time.perf_counter()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        await loop.run_in_executor(self._executor, self._build_artifacts)
        if self.workers is not None and self.workers > 1:
            self._pool = parallel.WorkerPool(self.workers)
        self._prove_q = asyncio.Queue()
        self._verify_q = asyncio.Queue()
        self._tasks = [loop.create_task(self._prove_loop()),
                       loop.create_task(self._verify_loop())]
        self._draining = False
        self._started = True
        return self

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc):
        await self.drain()
        return False

    def _build_artifacts(self):
        from repro.circuit.compiler import compile_circuit
        from repro.curves import get_curve
        from repro.groth16 import (
            generate_witness,
            prove,
            public_inputs,
            setup,
        )
        from repro.harness.circuits import build_workload

        def build():
            curve = get_curve(self.curve)
            builder, inputs = build_workload(self.workload, curve, self.size)
            circuit = compile_circuit(builder)
            pk, vk = setup(curve, circuit,
                           random.Random(f"serve:setup:{self.seed}"))
            witness = generate_witness(circuit, inputs)
            publics = public_inputs(circuit, witness)
            proof0 = prove(pk, circuit, witness,
                           random.Random(f"serve:proof0:{self.seed}"))
            return (curve, circuit, pk, vk, witness, publics, proof0)

        key = (self.curve, self.workload, self.size, self.seed)
        (self._curve_obj, self._circuit, self._pk, self._vk,
         self._witness, self._publics, self._proof0) = \
            ARTIFACT_CACHE.get(key, build)

    async def drain(self, timeout_s=None):
        """Stop admitting, let in-flight jobs finish or deadline-out,
        then stop the loops and close the pool gracefully.

        With *timeout_s*, jobs still *queued* when it elapses resolve as
        ``error[timeout]`` without executing (the job actively running
        on the compute thread is always allowed to finish — its own
        deadline is the cancellation mechanism).
        """
        if not self._started:
            return
        self._draining = True
        deadline = (time.perf_counter() + timeout_s
                    if timeout_s is not None else None)
        while self._outstanding > 0:
            if deadline is not None and time.perf_counter() >= deadline:
                break
            await asyncio.sleep(0.002)
        self._flush_queue(self._prove_q)
        self._flush_queue(self._verify_q)
        self._prove_q.put_nowait(_STOP)
        self._verify_q.put_nowait(_STOP)
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close(graceful=True)
            self._pool = None
        self._started = False

    def _flush_queue(self, queue):
        """Resolve every still-queued job as a drain timeout."""
        while True:
            try:
                job = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if job is _STOP:
                queue.put_nowait(_STOP)
                return
            if job.accounted:
                continue
            # The job sat in the queue from admission until this flush.
            job.mark("queue_wait")
            exc = StageTimeout(
                f"request {job.request_id} drained before execution",
                stage="serve:drain")
            self._resolve(job, self._error_result(job, exc,
                                                  status="timeout"))

    # -- admission ----------------------------------------------------------------

    @property
    def queue_depth(self):
        if not self._started:
            return 0
        return self._prove_q.qsize() + self._verify_q.qsize()

    @property
    def outstanding(self):
        return self._outstanding

    def submit_nowait(self, kind="prove", deadline_s=None, payload=None):
        """Admit one request; returns the asyncio future of its
        :class:`JobResult`, or raises :class:`AdmissionError` when the
        request is shed (queue full, in-flight cap, or draining).

        *payload* for verify requests is ``(proof, publics)``; ``None``
        verifies the service's own sample proof.  Publics of the wrong
        arity are rejected up front with ``error[corrupt]`` — a poisoned
        request must not be able to take a whole batch down later.
        """
        # Phase origin: the admission phase spans from here to enqueue,
        # and total_s (elapsed from admitted_ts) then covers every phase.
        t_enter = time.perf_counter()
        if kind not in KINDS:
            raise ValueError(f"unknown request kind {kind!r}; "
                             f"choose from {KINDS}")
        if not self._started:
            raise AdmissionError("service is not running")
        self.counts["submitted"] += 1
        m = metrics.CURRENT
        if m is not None:
            m.inc("repro_serve_requests_total")
        if self._draining:
            self._shed(m, "service is draining; not admitting")
        if self._outstanding >= self.max_inflight:
            self._shed(m, f"in-flight cap reached "
                          f"({self._outstanding}/{self.max_inflight})")
        if self.queue_depth >= self.max_queue:
            self._shed(m, f"queue full ({self.queue_depth}/{self.max_queue})")
        if kind == "verify":
            if payload is None:
                payload = (self._proof0, list(self._publics))
            _proof, publics = payload
            if len(publics) != len(self._vk.ic) - 1:
                raise ArtifactCorruption(
                    "verify request rejected at admission",
                    artifact="publics", expected=len(self._vk.ic) - 1,
                    actual=len(publics))
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        self._next_id += 1
        job = Job(request_id=self._next_id, kind=kind,
                  future=asyncio.get_running_loop().create_future(),
                  deadline_s=deadline_s, admitted_ts=t_enter,
                  payload=payload)
        self._outstanding += 1
        (self._prove_q if kind == "prove" else self._verify_q).put_nowait(job)
        job.mark("admission")
        if m is not None:
            m.set_gauge("repro_serve_queue_depth", self.queue_depth)
        return job.future

    async def submit(self, kind="prove", deadline_s=None, payload=None):
        """Admit one request and await its :class:`JobResult`."""
        return await self.submit_nowait(kind, deadline_s=deadline_s,
                                        payload=payload)

    def _shed(self, m, reason):
        self.counts["shed"] += 1
        if m is not None:
            m.inc("repro_serve_shed_total")
        raise AdmissionError(reason)

    # -- execution ----------------------------------------------------------------

    async def _prove_loop(self):
        while True:
            job = await self._prove_q.get()
            if job is _STOP:
                return
            if job.accounted:
                continue
            job.mark("queue_wait")
            await self._run_prove(job)

    async def _run_prove(self, job):
        queue_wait = job.elapsed()
        exec_start = time.perf_counter()
        loop = asyncio.get_running_loop()
        last = None
        attempts = 0
        degraded = False
        while attempts < self.retry.max_attempts:
            attempts += 1
            if job.expired():
                self._resolve(job, self._timeout_result(
                    job, queue_wait, exec_start, attempts - 1))
                return
            use_pool = self._pool is not None and self.breaker.allow_pool()
            degraded = self._pool is not None and not use_pool
            if degraded:
                self.counts["degraded"] += 1
            seed = f"serve:prove:{self.seed}:{job.request_id}:{attempts}"
            detail = None
            try:
                # The inner finally marks the compute phase on success
                # *and* on every raise, before the handlers below run;
                # the executor hop is part of compute (the compute thread
                # is the resource the request was waiting for).
                try:
                    proof, detail = await loop.run_in_executor(
                        self._executor, self._compute_prove,
                        use_pool, job.remaining(), seed)
                finally:
                    job.mark("compute")
            except StageTimeout:
                self._resolve(job, self._timeout_result(
                    job, queue_wait, exec_start, attempts))
                return
            except WorkerCrash as exc:
                if use_pool:
                    self.breaker.record_failure()
                last = exc
            except ReproError as exc:
                if not is_retryable(exc):
                    self._resolve(job, self._error_result(
                        job, exc, queue_wait=queue_wait,
                        service_s=time.perf_counter() - exec_start,
                        attempts=attempts, degraded=degraded))
                    return
                last = exc
            except Exception as exc:  # noqa: BLE001 - resolves typed-or-untyped, never hangs
                self._resolve(job, self._error_result(
                    job, exc, queue_wait=queue_wait,
                    service_s=time.perf_counter() - exec_start,
                    attempts=attempts, degraded=degraded))
                return
            else:
                if use_pool:
                    self.breaker.record_success()
                self._resolve(job, JobResult(
                    request_id=job.request_id, kind="prove", status="ok",
                    proof_bytes=proof.size_bytes(),
                    queue_wait_s=queue_wait,
                    service_s=time.perf_counter() - exec_start,
                    total_s=job.elapsed(), attempts=attempts,
                    degraded=degraded, compute_detail=detail))
                return
            # Retryable fault: async backoff, then go again.
            self.counts["retries"] += 1
            m = metrics.CURRENT
            if m is not None:
                m.inc("repro_serve_retries_total")
            if attempts < self.retry.max_attempts:
                delay = self.retry.delay(attempts)
                if self.retry.sleeps and delay > 0:
                    await asyncio.sleep(delay)
                job.mark("retry_backoff")
        self._resolve(job, self._error_result(
            job, last, queue_wait=queue_wait,
            service_s=time.perf_counter() - exec_start,
            attempts=attempts, degraded=degraded))

    def _compute_prove(self, use_pool, remaining, seed):
        """Compute-thread body of one prove attempt: deadline scope,
        fault site, optional pool, one Groth16 proof.

        Returns ``(proof, compute_detail)`` — the detail is the
        worker-side split of the compute phase when the PR 7 telemetry
        collector is installed (``None`` otherwise): how many pool tasks
        this proof fanned out and how much worker-busy time they cost.
        Compute is serialized on the single service thread, so the
        collector's task-list delta around the call is exactly this
        request's fan-out.
        """
        from repro.groth16 import prove
        from repro.obs import worker as obs_worker

        collector = obs_worker.CURRENT
        n0 = 0
        if collector is not None:
            n0 = len(collector.tasks)
        with resilience.deadline_scope(remaining, stage="serve:proving"):
            inj = faults.CURRENT
            if inj is not None:
                inj.check("serve:prove")
            cm = (parallel.using(self._pool) if use_pool
                  else nullcontext())
            with cm:
                proof = prove(self._pk, self._circuit, self._witness,
                              random.Random(seed))
        detail = None
        if collector is not None:
            tasks = collector.tasks[n0:]
            if tasks:
                detail = {
                    "worker_tasks": len(tasks),
                    "worker_busy_s": round(
                        sum(t.get("wall_s", 0.0) for t in tasks), 6),
                }
        return proof, detail

    async def _verify_loop(self):
        loop = asyncio.get_running_loop()
        while True:
            job = await self._verify_q.get()
            if job is _STOP:
                return
            job.mark("queue_wait")
            batch = [job]
            if self.max_batch > 1 and self.batch_window_s > 0:
                end = loop.time() + self.batch_window_s
                while len(batch) < self.max_batch:
                    window = end - loop.time()
                    if window <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._verify_q.get(), window)
                    except asyncio.TimeoutError:
                        break
                    if nxt is _STOP:
                        self._verify_q.put_nowait(_STOP)
                        break
                    nxt.mark("queue_wait")
                    batch.append(nxt)
            await self._run_verify(batch)

    async def _run_verify(self, batch):
        exec_start = time.perf_counter()
        loop = asyncio.get_running_loop()
        live, waits = [], {}
        for job in batch:
            if job.accounted:
                continue
            # Dequeue-to-batch-execution is the coalescing window's cost
            # (the batch leader pays the full window; the last joiner ~0).
            job.mark("coalesce_delay")
            waits[job.request_id] = job.elapsed()
            if job.expired():
                self._resolve(job, self._timeout_result(
                    job, waits[job.request_id], exec_start, 0))
                continue
            live.append(job)
        if not live:
            return
        self.counts["verify_batches"] += 1
        if len(live) > 1:
            self.counts["verify_coalesced"] += len(live)
        m = metrics.CURRENT
        if m is not None:
            m.inc("repro_serve_verify_batches_total")
            m.observe("repro_serve_verify_batch_size", len(live))
        # The scope guards the whole batch with the *loosest* member
        # budget; members are re-checked against their own deadlines
        # afterwards (an unbounded member lifts the batch bound).
        remainings = [j.remaining() for j in live]
        batch_remaining = (None if any(r is None for r in remainings)
                           else max(remainings))
        self._batch_seq += 1
        seed = f"serve:verify:{self.seed}:{self._batch_seq}"
        payloads = [j.payload for j in live]
        attempts = 0
        last = None
        while attempts < self.retry.max_attempts:
            attempts += 1
            try:
                try:
                    ok, bad = await loop.run_in_executor(
                        self._executor, self._compute_verify,
                        payloads, batch_remaining, seed)
                finally:
                    for job in live:
                        job.mark("compute")
            except StageTimeout:
                for job in live:
                    self._resolve(job, self._timeout_result(
                        job, waits[job.request_id], exec_start, attempts))
                return
            except ReproError as exc:
                if is_retryable(exc) and attempts < self.retry.max_attempts:
                    last = exc
                    self.counts["retries"] += 1
                    if m is not None:
                        m.inc("repro_serve_retries_total")
                    delay = self.retry.delay(attempts)
                    if self.retry.sleeps and delay > 0:
                        await asyncio.sleep(delay)
                    for job in live:
                        job.mark("retry_backoff")
                    continue
                for job in live:
                    self._resolve(job, self._error_result(
                        job, exc, queue_wait=waits[job.request_id],
                        service_s=time.perf_counter() - exec_start,
                        attempts=attempts, batched=len(live)))
                return
            except Exception as exc:  # noqa: BLE001 - typed-or-untyped, never hangs
                for job in live:
                    self._resolve(job, self._error_result(
                        job, exc, queue_wait=waits[job.request_id],
                        service_s=time.perf_counter() - exec_start,
                        attempts=attempts, batched=len(live)))
                return
            else:
                bad_set = set(bad)
                if bad_set:
                    self.counts["isolated_bad"] += len(bad_set)
                    if m is not None:
                        m.inc("repro_serve_isolated_bad_total",
                              len(bad_set))
                service_s = time.perf_counter() - exec_start
                for i, job in enumerate(live):
                    if job.expired():
                        self._resolve(job, self._timeout_result(
                            job, waits[job.request_id], exec_start,
                            attempts))
                        continue
                    self._resolve(job, JobResult(
                        request_id=job.request_id, kind="verify",
                        status="ok", accepted=ok or i not in bad_set,
                        queue_wait_s=waits[job.request_id],
                        service_s=service_s, total_s=job.elapsed(),
                        attempts=attempts, batched=len(live)))
                return
        for job in live:
            self._resolve(job, self._error_result(
                job, last, queue_wait=waits[job.request_id],
                service_s=time.perf_counter() - exec_start,
                attempts=attempts, batched=len(live)))

    def _compute_verify(self, payloads, remaining, seed):
        """Compute-thread body of one coalesced verify batch: folded
        batch check, bisect on failure to isolate the poisoned members."""
        from repro.resilience.degrade import batch_verify_bisect

        with resilience.deadline_scope(remaining, stage="serve:verifying"):
            inj = faults.CURRENT
            if inj is not None:
                inj.check("serve:verify")
            use_pool = self._pool is not None and self.breaker.allow_pool()
            cm = parallel.using(self._pool) if use_pool else nullcontext()
            with cm:
                ok, bad = batch_verify_bisect(self._vk, payloads,
                                              random.Random(seed))
            if use_pool:
                self.breaker.record_success()
        return ok, bad

    # -- resolution ---------------------------------------------------------------

    def _timeout_result(self, job, queue_wait, exec_start, attempts):
        exc = StageTimeout(
            f"request {job.request_id} exceeded its "
            f"{job.deadline_s:.3f}s deadline" if job.deadline_s is not None
            else f"request {job.request_id} timed out",
            stage=f"serve:{job.kind}", deadline_s=job.deadline_s,
            elapsed_s=job.elapsed())
        return self._error_result(
            job, exc, status="timeout", queue_wait=queue_wait,
            service_s=max(0.0, time.perf_counter() - exec_start),
            attempts=attempts)

    def _error_result(self, job, exc, status="error", queue_wait=0.0,
                      service_s=0.0, attempts=0, batched=0, degraded=False):
        code = classify(exc)
        if status == "error" and code == "timeout":
            status = "timeout"
        one_line = (exc.one_line() if isinstance(exc, ReproError)
                    else f"error[untyped]: {type(exc).__name__}: {exc}")
        return JobResult(
            request_id=job.request_id, kind=job.kind, status=status,
            error_code=code, error=one_line, queue_wait_s=queue_wait,
            service_s=service_s, total_s=job.elapsed(), attempts=attempts,
            batched=batched, degraded=degraded)

    def _resolve(self, job, result):
        if job.accounted:
            return
        job.accounted = True
        self._outstanding -= 1
        # Close the phase clock before handing the result out: the tail
        # since the last mark is settle, so the phases partition the
        # request's lifetime and sum to total_s within tolerance on
        # every resolution path.
        result.phases = job.finish_phases()
        result.start_s = max(0.0, job.admitted_ts - self._t0)
        # A caller may have cancelled the future (e.g. a load generator
        # torn down mid-run); the accounting above must still happen or
        # drain() would wait for the job forever.
        if not job.future.done():
            job.future.set_result(result)
        if result.status == "ok":
            self.counts["ok"] += 1
            if result.accepted is False:
                self.counts["rejected"] += 1
        else:
            self.counts[result.status] = self.counts.get(result.status, 0) + 1
        m = metrics.CURRENT
        if m is not None:
            m.inc(f"repro_serve_{job.kind}_resolved_total")
            if result.status == "timeout":
                m.inc("repro_serve_timeouts_total")
            elif result.status == "error":
                m.inc("repro_serve_errors_total")
            m.observe("repro_serve_latency_seconds", result.total_s,
                      buckets=TIME_BUCKETS)
            m.observe("repro_serve_queue_wait_seconds", result.queue_wait_s,
                      buckets=TIME_BUCKETS)
            for phase, dur in result.phases.items():
                m.observe(f"repro_serve_phase_{phase}_seconds", dur,
                          buckets=TIME_BUCKETS)
            m.set_gauge("repro_serve_queue_depth", self.queue_depth)

    # -- introspection ------------------------------------------------------------

    def verify_payload(self, bad=False):
        """A ``(proof, publics)`` verify payload against the service's
        own key; ``bad=True`` poisons it (valid shape, wrong public
        input) so the proof is *rejected*, exercising batch isolation."""
        publics = list(self._publics)
        if bad:
            if not publics:
                raise ValueError("cannot poison a zero-public circuit")
            publics[0] = (publics[0] + 1) % self._curve_obj.fr.modulus
        return (self._proof0, publics)

    def stats(self):
        return {
            "curve": self.curve, "size": self.size,
            "workload": self.workload,
            "workers": self.workers or 1,
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
            "default_deadline_s": self.default_deadline_s,
            "outstanding": self._outstanding,
            "queue_depth": self.queue_depth,
            "draining": self._draining,
            "counts": dict(self.counts),
            "breaker": self.breaker.to_dict(),
        }

"""Circuit breaker guarding the parallel execution substrate.

The service's slow path is the :class:`~repro.parallel.pool.WorkerPool`.
When worker processes start crashing (``error[worker]``), retrying every
request through the same broken pool multiplies the damage; the breaker
converts "repeated :class:`~repro.resilience.errors.WorkerCrash`" into a
mode switch instead:

``closed``
    Normal operation; jobs run through the pool.
``open``
    Tripped after :attr:`threshold` consecutive crashes.  Jobs run on
    the degradation path — serial execution, no pool, the same
    :func:`~repro.resilience.degrade.resilient_msm` kernels — for
    :attr:`cooldown_s` seconds.
``half-open``
    Cooldown over: the next job probes the pool again; success closes
    the breaker, another crash re-opens it.

The clock is injectable so tests (and the deterministic chaos driver)
can step time instead of sleeping.
"""

from __future__ import annotations

import time

from repro.obs import metrics

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown probe."""

    def __init__(self, threshold=3, cooldown_s=1.0, clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at = None
        self._probing = False
        self.trips = 0

    @property
    def state(self):
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow_pool(self):
        """Whether the next job may use the worker pool.

        ``closed`` always allows; ``open`` never does; ``half-open``
        admits exactly one probe at a time (concurrent jobs during the
        probe stay degraded until the probe reports back).
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self):
        """A pool-executed job finished: close the breaker."""
        if self._opened_at is not None or self._failures:
            m = metrics.CURRENT
            if m is not None:
                m.set_gauge("repro_serve_breaker_open", 0)
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self):
        """A pool-executed job died with a ``WorkerCrash``; returns True
        when this failure tripped (or re-tripped) the breaker."""
        self._probing = False
        self._failures += 1
        if self._failures < self.threshold and self._opened_at is None:
            return False
        tripped = self._opened_at is None
        self._opened_at = self._clock()
        if tripped:
            self.trips += 1
            m = metrics.CURRENT
            if m is not None:
                m.inc("repro_serve_breaker_trips_total")
                m.set_gauge("repro_serve_breaker_open", 1)
        return tripped

    def to_dict(self):
        return {"state": self.state, "threshold": self.threshold,
                "cooldown_s": self.cooldown_s, "trips": self.trips,
                "consecutive_failures": self._failures}

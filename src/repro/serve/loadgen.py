"""Open-loop load generator and latency report for the proving service.

:func:`run_loadtest` drives a running :class:`~repro.serve.service.ProvingService`
with a **fixed** request schedule — request *i* of a ``--rps R`` run is
issued at ``start + i/R`` regardless of how many earlier requests have
resolved.  Open-loop generation is the honest way to load a bounded
service: a closed loop would slow its own arrival rate exactly when the
service saturates, hiding the queueing collapse (and the shedding) the
admission layer exists to handle.

The generator is fully seeded — the prove/verify interleaving and the
choice of poisoned verify payloads replay bit-identically for one seed —
so the chaos-under-load suite can assert on exact request stories.

:class:`LoadReport` aggregates the terminal
:class:`~repro.serve.jobs.JobResult`\\ s into the latency/throughput/
shed-rate summary the CLI prints, and renders the ledger's schema-v4
``service`` block (:meth:`LoadReport.to_service_block`).
"""

from __future__ import annotations

import asyncio
import math
import random
import time

from repro.resilience.errors import AdmissionError, ReproError, classify
from repro.serve.jobs import PHASES, JobResult

__all__ = ["LoadReport", "parse_mix", "run_loadtest"]

#: Default traffic mix: equal parts proving and verification.
DEFAULT_MIX = {"prove": 1, "verify": 1}


def parse_mix(text):
    """Parse a ``--mix`` spec into ``{kind: weight}``.

    Accepts ``prove:verify`` (equal weights), ``prove=3,verify=1``,
    ``prove`` (single-kind), and colon/comma separation interchangeably.
    """
    if not text or not text.strip():
        raise ValueError("empty traffic mix")
    mix = {}
    for part in text.replace(":", ",").split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, weight = part.partition("=")
        kind = kind.strip()
        if kind not in ("prove", "verify"):
            raise ValueError(f"unknown request kind {kind!r} in mix "
                             f"(choose prove/verify)")
        try:
            w = int(weight) if weight else 1
        except ValueError:
            raise ValueError(f"bad weight {weight!r} for {kind!r}") from None
        if w < 0:
            raise ValueError(f"negative weight for {kind!r}")
        mix[kind] = mix.get(kind, 0) + w
    if not mix or sum(mix.values()) <= 0:
        raise ValueError(f"traffic mix {text!r} has no positive weight")
    return mix


def percentile(sorted_values, p):
    """Nearest-rank percentile of an ascending list (0.0 when empty).

    The contract, pinned exactly (tests/serve/test_loadgen.py):

    - rank is ``max(1, ceil(p/100 * n))`` — the classic nearest-rank
      definition, with the float product rounded at the 9th decimal so
      binary noise (``0.95 * 20 -> 19.000000000000004``-style) cannot
      shift a rank;
    - 1-sample sets return that sample for every p;
    - 2-sample sets return the *lower* sample for p50 and the upper for
      p95/p99 (nearest-rank takes an actual sample; it never
      interpolates, so tiny result sets are coarse but honest);
    - the empty set returns the 0.0 sentinel — callers that serialize
      distributions carry an explicit ``n`` so a sentinel 0.0 is
      distinguishable from a measured 0.0 (:func:`_dist`).
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(round(p / 100.0 * len(sorted_values), 9)))
    return sorted_values[min(len(sorted_values) - 1, rank - 1)]


def _dist(values):
    """Summary distribution of *values*; ``n`` makes the empty-set
    sentinel explicit: ``n == 0`` means "no samples" and every other
    field is the 0.0 sentinel, not a measurement."""
    values = sorted(values)
    if not values:
        return {"n": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}
    return {
        "n": len(values),
        "p50": round(percentile(values, 50), 6),
        "p95": round(percentile(values, 95), 6),
        "p99": round(percentile(values, 99), 6),
        "mean": round(sum(values) / len(values), 6),
        "max": round(values[-1], 6),
    }


class LoadReport:
    """Aggregation of one load run's terminal results."""

    def __init__(self, rps, duration_s, mix, seed, results, wall_s,
                 depth_samples, stats):
        self.rps = rps
        self.duration_s = duration_s
        self.mix = dict(mix)
        self.seed = seed
        self.results = list(results)
        self.wall_s = wall_s
        self.depth_samples = list(depth_samples)
        self.stats = stats

    # -- derived ------------------------------------------------------------------

    @property
    def sent(self):
        return len(self.results)

    def count(self, status):
        return sum(1 for r in self.results if r.status == status)

    @property
    def ok(self):
        return self.count("ok")

    @property
    def rejected(self):
        """Verify requests the service *answered* with accepted=False —
        service success, invalid proof."""
        return sum(1 for r in self.results
                   if r.status == "ok" and r.accepted is False)

    @property
    def unresolved(self):
        """Requests that broke the typed-resolution contract (must be 0)."""
        return [r for r in self.results if not r.resolved_typed]

    def error_codes(self):
        codes = {}
        for r in self.results:
            if r.error_code:
                codes[r.error_code] = codes.get(r.error_code, 0) + 1
        return codes

    def _rate(self, n):
        return round(n / self.sent, 6) if self.sent else 0.0

    def phase_breakdown(self):
        """Aggregate per-request phase accounting over every result that
        carries a phase dict (i.e. every request that entered the
        service; client-side sheds are untracked by design).

        Returns ``{"n", "mean_s": {phase: mean}, "share": {phase:
        fraction of tracked mean total}, "max_abs_error_s"}`` where the
        last field is the worst violation of the additive invariant
        (phases sum to ``total_s``) seen in this run.
        """
        tracked = [r for r in self.results if r.phases]
        if not tracked:
            return {"n": 0, "mean_s": {}, "share": {},
                    "max_abs_error_s": 0.0}
        mean_s = {}
        for ph in PHASES:
            mean_s[ph] = round(
                sum(r.phases.get(ph, 0.0) for r in tracked) / len(tracked), 6)
        total = sum(mean_s.values())
        share = {ph: (round(v / total, 4) if total > 0 else 0.0)
                 for ph, v in mean_s.items()}
        max_err = max(abs(r.phase_error()) for r in tracked)
        return {"n": len(tracked), "mean_s": mean_s, "share": share,
                "max_abs_error_s": round(max_err, 9)}

    def to_service_block(self):
        """The ledger ``service`` block (schema v4; v5 adds ``phases``)."""
        ok_lat = [r.total_s for r in self.results if r.status == "ok"]
        ok_wait = [r.queue_wait_s for r in self.results if r.status == "ok"]
        depths = self.depth_samples or [0]
        counts = self.stats.get("counts", {})
        return {
            "rps_target": self.rps,
            "duration_s": self.duration_s,
            "mix": dict(self.mix),
            "seed": self.seed,
            "wall_s": round(self.wall_s, 6),
            "workers": self.stats.get("workers", 1),
            "max_queue": self.stats.get("max_queue"),
            "max_inflight": self.stats.get("max_inflight"),
            "requests": {
                "sent": self.sent,
                "ok": self.ok,
                "rejected": self.rejected,
                "shed": self.count("shed"),
                "timeout": self.count("timeout"),
                "error": self.count("error"),
                "unresolved": len(self.unresolved),
            },
            "error_codes": self.error_codes(),
            "latency_s": _dist(ok_lat),
            "queue_wait_s": _dist(ok_wait),
            "throughput_rps": (round(self.ok / self.wall_s, 6)
                               if self.wall_s > 0 else 0.0),
            "shed_rate": self._rate(self.count("shed")),
            "timeout_rate": self._rate(self.count("timeout")),
            "error_rate": self._rate(self.count("error")),
            "queue_depth": {
                "mean": round(sum(depths) / len(depths), 3),
                "max": max(depths),
            },
            "retries": counts.get("retries", 0),
            "degraded": counts.get("degraded", 0),
            "verify": {
                "batches": counts.get("verify_batches", 0),
                "coalesced": counts.get("verify_coalesced", 0),
                "isolated_bad": counts.get("isolated_bad", 0),
            },
            "breaker": self.stats.get("breaker"),
            "phases": self.phase_breakdown(),
        }

    def render_text(self):
        b = self.to_service_block()
        lat, wait, req = b["latency_s"], b["queue_wait_s"], b["requests"]
        lines = [
            f"loadtest: {self.sent} requests @ {self.rps} rps target "
            f"over {self.wall_s:.2f}s "
            f"(mix {','.join(f'{k}={v}' for k, v in sorted(self.mix.items()))}, "
            f"seed {self.seed}, workers {b['workers']})",
            f"  resolved   ok={req['ok']} rejected={req['rejected']} "
            f"shed={req['shed']} timeout={req['timeout']} "
            f"error={req['error']} unresolved={req['unresolved']}",
            f"  throughput {b['throughput_rps']:.2f} ok/s   "
            f"shed_rate {b['shed_rate']:.1%}  "
            f"timeout_rate {b['timeout_rate']:.1%}  "
            f"error_rate {b['error_rate']:.1%}",
            f"  latency    p50={lat['p50'] * 1e3:.1f}ms "
            f"p95={lat['p95'] * 1e3:.1f}ms p99={lat['p99'] * 1e3:.1f}ms "
            f"max={lat['max'] * 1e3:.1f}ms",
            f"  queue      wait p95={wait['p95'] * 1e3:.1f}ms  "
            f"depth mean={b['queue_depth']['mean']:.1f} "
            f"max={b['queue_depth']['max']}",
            f"  resilience retries={b['retries']} degraded={b['degraded']} "
            f"breaker={b['breaker']['state'] if b['breaker'] else 'n/a'} "
            f"(trips {b['breaker']['trips'] if b['breaker'] else 0})",
            f"  verify     batches={b['verify']['batches']} "
            f"coalesced={b['verify']['coalesced']} "
            f"isolated_bad={b['verify']['isolated_bad']}",
        ]
        ph = b["phases"]
        if ph["n"]:
            parts = " ".join(f"{name}={ph['mean_s'][name] * 1e3:.1f}ms"
                             for name in PHASES
                             if ph["mean_s"].get(name, 0.0) > 0)
            lines.append(f"  phases     {parts or 'n/a'} "
                         f"(n={ph['n']}, max|err|="
                         f"{ph['max_abs_error_s'] * 1e3:.3f}ms)")
        if b["error_codes"]:
            codes = " ".join(f"{k}={v}"
                             for k, v in sorted(b["error_codes"].items()))
            lines.append(f"  error codes {codes}")
        return "\n".join(lines)


async def run_loadtest(service, rps, duration_s, mix=None, seed=0,
                       deadline_s=None, bad_verify_pct=0.0, stop=None):
    """Drive *service* open-loop and return a :class:`LoadReport`.

    ``bad_verify_pct`` (0..100) poisons that share of verify requests
    with a wrong public input — a parseable payload whose proof must be
    *rejected*, exercising batch-verify bisection under load.  Shed
    requests (:class:`AdmissionError` at submit) resolve client-side
    immediately; everything admitted resolves through the service.

    *stop* (an ``asyncio.Event``) aborts the remaining arrival schedule
    when set — the SIGTERM-drain path of the ``serve`` verb: already
    admitted requests still resolve and land in the report.
    """
    if rps <= 0:
        raise ValueError(f"rps must be > 0, got {rps}")
    if duration_s <= 0:
        raise ValueError(f"duration must be > 0, got {duration_s}")
    mix = dict(mix) if mix else dict(DEFAULT_MIX)
    kinds = sorted(k for k, w in mix.items() if w > 0)
    weights = [mix[k] for k in kinds]
    rng = random.Random(f"loadtest:{seed}")
    n = max(1, int(round(rps * duration_s)))
    loop = asyncio.get_running_loop()
    results, pending, depth_samples = [], [], []
    done = asyncio.Event()

    async def sample_depth():
        while not done.is_set():
            depth_samples.append(service.queue_depth)
            try:
                await asyncio.wait_for(done.wait(), 0.02)
            except asyncio.TimeoutError:
                continue

    sampler = loop.create_task(sample_depth())
    start = loop.time()
    wall_start = time.perf_counter()
    for i in range(n):
        if stop is not None and stop.is_set():
            break
        delay = (start + i / rps) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        kind = rng.choices(kinds, weights=weights)[0]
        payload = None
        if kind == "verify":
            bad = rng.random() * 100.0 < bad_verify_pct
            payload = service.verify_payload(bad=bad)
        try:
            fut = service.submit_nowait(kind, deadline_s=deadline_s,
                                        payload=payload)
        except AdmissionError as exc:
            results.append(JobResult(
                request_id=-(i + 1), kind=kind, status="shed",
                error_code=exc.code, error=exc.one_line()))
        except ReproError as exc:
            # e.g. a corrupt payload rejected at admission.
            results.append(JobResult(
                request_id=-(i + 1), kind=kind, status="error",
                error_code=classify(exc), error=exc.one_line()))
        else:
            pending.append(fut)
    if pending:
        results.extend(await asyncio.gather(*pending))
    done.set()
    await sampler
    wall_s = time.perf_counter() - wall_start
    return LoadReport(rps=rps, duration_s=duration_s, mix=mix, seed=seed,
                      results=results, wall_s=wall_s,
                      depth_samples=depth_samples, stats=service.stats())

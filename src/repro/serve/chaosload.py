"""Chaos under load: seeded fault injection while traffic flows.

:func:`run_chaos_load` is the serving-layer sibling of
:func:`repro.resilience.chaos.run_chaos`: instead of one pipeline run, it
stands up a :class:`~repro.serve.service.ProvingService`, installs a
deterministic fault plan drawn over the *service* sites (plus the kernel
sites prove/verify reach naturally), and drives open-loop traffic
through it.  The contract under test is stronger than the pipeline
one — not merely "typed or recovered" for one run, but:

- **zero hangs**: every admitted request resolves (the load generator
  awaits every future; a missing resolution would deadlock the test,
  which is why the suite runs it under its own deadline);
- **everything typed**: every non-``ok`` result carries a taxonomy
  ``error_code`` — shed requests as ``error[admission]``, expired ones
  as ``error[timeout]``, injected faults as their own leaf after the
  retry/degradation budget is spent; ``untyped`` is the one verdict
  treated as a bug.

The whole story — fault plan, arrival order, retry schedule — replays
bit-identically for one seed (the retry policy is built with
``sleep=None`` so backoff is recorded, not slept).
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import metrics
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.loadgen import run_loadtest
from repro.serve.service import ProvingService

__all__ = ["ChaosLoadReport", "CHAOS_LOAD_SITES", "run_chaos_load"]

#: Sites the chaos-under-load schedule draws from: the service's own
#: fault points plus the kernels a prove request reaches.
CHAOS_LOAD_SITES = (
    "serve:prove",
    "serve:verify",
    "msm:pippenger",
    "ntt:transform",
)


class ChaosLoadReport:
    """Outcome of one chaos-under-load run."""

    def __init__(self, seed, plan, load, counters):
        self.seed = seed
        self.plan = plan
        self.load = load
        self.counters = counters

    @property
    def violations(self):
        """Typed-resolution breaches: unresolved results and results
        whose error escaped the taxonomy."""
        out = [f"request {r.request_id} ({r.kind}) did not resolve typed: "
               f"status={r.status!r} error_code={r.error_code!r}"
               for r in self.load.unresolved]
        out.extend(
            f"request {r.request_id} ({r.kind}) resolved untyped: {r.error}"
            for r in self.load.results if r.error_code == "untyped")
        return out

    @property
    def acceptable(self):
        """True iff every request resolved and every failure was typed."""
        return not self.violations

    @property
    def status(self):
        return "all-typed" if self.acceptable else "contract-violated"

    def to_dict(self):
        return {
            "seed": self.seed,
            "status": self.status,
            "plan": [spec.to_dict() for spec in self.plan],
            "faults_fired": sum(1 for s in self.plan if s.fired),
            "violations": self.violations,
            "service": self.load.to_service_block(),
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self):
        fired = sum(1 for s in self.plan if s.fired)
        lines = [
            f"chaos under load: seed={self.seed} faults={len(self.plan)} "
            f"({fired} fired)",
            "plan:",
        ]
        for spec in self.plan:
            state = "fired  " if spec.fired else "pending"
            lines.append(f"  [{state}] {spec.kind:9s} at {spec.site} "
                         f"(hit {spec.hit})")
        lines.append(self.load.render_text())
        lines.append(f"outcome: {self.status}")
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


def run_chaos_load(seed=0, n_faults=4, rps=8.0, duration_s=2.0, mix=None,
                   curve="bn128", size=32, workload="exponentiate",
                   workers=None, max_queue=16, max_inflight=64,
                   deadline_s=None, bad_verify_pct=0.0, max_hit=3,
                   max_attempts=3, plan=None):
    """Run one seeded chaos-under-load experiment; returns a
    :class:`ChaosLoadReport`.

    *plan* overrides the schedule derived from *seed* (the test suite
    pins single faults to single sites with it).  The run owns its
    event loop (``asyncio.run``), so it is callable from the CLI and
    from synchronous tests alike.
    """
    if plan is None:
        plan = faults.schedule(seed, n_faults, sites=CHAOS_LOAD_SITES,
                               max_hit=max_hit)
    service = ProvingService(
        curve=curve, size=size, workload=workload, workers=workers,
        max_queue=max_queue, max_inflight=max_inflight,
        default_deadline_s=deadline_s,
        retry=RetryPolicy(max_attempts=max_attempts, seed=seed, sleep=None),
        breaker=CircuitBreaker(cooldown_s=0.05), seed=seed)

    registry = metrics.MetricsRegistry()

    async def _run():
        # Build the circuit cell *before* arming the injector: chaos
        # targets the serving window, not the warm-up setup/proof.
        await service.start()
        try:
            with metrics.collecting(registry), faults.injecting(plan):
                return await run_loadtest(
                    service, rps=rps, duration_s=duration_s, mix=mix,
                    seed=seed, deadline_s=deadline_s,
                    bad_verify_pct=bad_verify_pct)
        finally:
            await service.drain()

    load = asyncio.run(_run())
    counters = {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if name.startswith(("repro_serve_", "repro_resilience_"))
    }
    return ChaosLoadReport(seed=seed, plan=plan, load=load,
                           counters=counters)

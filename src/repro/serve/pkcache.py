"""Bounded per-process proving-key cache for the serving layer.

``groth16.setup`` dominates a service's cold start (it is a full
multi-exponentiation sweep over the circuit), and before this module the
service's artifact memo was an unbounded plain dict keyed by one cell —
fine for a single-circuit service, pathological for mixed-circuit
traffic, where every distinct (curve, workload, size, seed) cell paid a
fresh setup per process *and* the memo never let anything go.

:class:`PKCache` is the replacement: an LRU-bounded map from cell key to
the full prepared artifact tuple (curve, circuit, pk, vk, witness,
publics, sample proof), with

- ``repro_serve_pk_cache_hits_total`` / ``repro_serve_pk_cache_misses_total``
  counters so a capacity run can see whether mixed traffic is
  setup-bound, and
- ``repro_serve_pk_cache_evictions_total`` plus a hard ``max_entries``
  bound so a long-lived process serving many cells cannot hold every
  proving key it ever built (proving keys are the largest artifacts in
  the system).

Correctness does not depend on the cache: setup is seeded from the cell
key, so a cached proving key and a freshly built one are byte-identical,
and proofs made with either are byte-identical too (pinned by
``tests/serve/test_pkcache.py``).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs import metrics

__all__ = ["DEFAULT_MAX_ENTRIES", "PKCache"]

#: Default cache bound: enough for a realistic mixed-traffic cell set,
#: small enough that an accidental size sweep cannot hoard proving keys.
DEFAULT_MAX_ENTRIES = 8


class PKCache:
    """LRU cache of prepared circuit-cell artifacts, bounded by entries."""

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def keys(self):
        """Cell keys in LRU order (oldest first)."""
        return list(self._entries)

    def get(self, key, build):
        """The artifacts for *key*, building (and caching) on miss.

        *build* is a zero-argument callable producing the artifact tuple;
        it runs only on a miss.  Hits refresh the entry's LRU position.
        Inserting beyond ``max_entries`` evicts the least recently used
        entry and bumps the eviction counter.
        """
        m = metrics.CURRENT
        art = self._entries.get(key)
        if art is not None:
            self._entries.move_to_end(key)
            if m is not None:
                m.inc("repro_serve_pk_cache_hits_total")
            return art
        if m is not None:
            m.inc("repro_serve_pk_cache_misses_total")
        art = build()
        self._entries[key] = art
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            if m is not None:
                m.inc("repro_serve_pk_cache_evictions_total")
        return art

    def clear(self):
        self._entries.clear()

"""Request/result model of the proving service.

Every request the service ever accepts — and every request it refuses —
ends as exactly one :class:`JobResult`, so "no request hangs and none
resolves untyped" is checkable by construction: a result's ``status`` is
one of :data:`STATUSES` and a non-``ok`` result always carries the
taxonomy ``error_code`` behind it (``admission``, ``timeout``, or
another :mod:`repro.resilience.errors` leaf).

Internally a :class:`Job` is the queue-resident form: the asyncio future
the submitter awaits, the admission timestamp the queue-wait and
deadline math hang off, and — for verify requests — the proof/publics
payload the batcher coalesces.

**Phase accounting.**  Every job also carries a phase clock: the service
marks each transition of the request's life (:meth:`Job.mark`) and the
interval since the previous mark is attributed to exactly one of
:data:`PHASES`.  Because the phases partition the request's lifetime by
construction, their sum telescopes to ``total_s`` — the accounting
invariant (:meth:`JobResult.phases_consistent`) then checks that *every*
resolution path of the service (ok, shed, timeout, retried,
coalesced-bisected, drain-flushed) kept the bookkeeping straight, which
is what the phase-breakdown report and the ``pareto`` capacity sweep
stand on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Job", "JobResult", "KINDS", "PHASES", "STATUSES"]

#: Request kinds the service executes.
KINDS = ("prove", "verify")

#: The additive latency phases of one request, in lifecycle order:
#: ``admission`` (submit-time checks), ``queue_wait`` (enqueued, not yet
#: picked up), ``coalesce_delay`` (verify only: dequeued, waiting for the
#: batch window to close), ``retry_backoff`` (async backoff between
#: attempts), ``compute`` (on the compute thread, including the executor
#: hop), ``settle`` (resolution bookkeeping and anything unmarked).
PHASES = ("admission", "queue_wait", "coalesce_delay", "retry_backoff",
          "compute", "settle")

#: Tolerance (seconds) on the phase-accounting invariant: phases are
#: marked with their own clock reads, so they can disagree with the
#: separately read ``total_s`` by scheduler noise, never by more.
PHASE_TOLERANCE_S = 1e-3

#: Every terminal state of a request.  ``ok`` may still mean "proof
#: rejected" for verify requests (see :attr:`JobResult.accepted`) — the
#: *service* worked; the proof was invalid.
STATUSES = ("ok", "shed", "timeout", "error")


@dataclass
class JobResult:
    """The one terminal record of a request's life in the service."""

    request_id: int
    kind: str
    status: str
    #: Taxonomy code (``repro.resilience.errors``) for non-``ok``
    #: statuses; ``None`` on success.
    error_code: Optional[str] = None
    #: The typed one-line rendering (``error[<code>]: ...``) or ``None``.
    error: Optional[str] = None
    #: Verify requests: the verifier's verdict (``None`` for prove).
    accepted: Optional[bool] = None
    #: Prove requests: serialized proof size (``None`` for verify).
    proof_bytes: Optional[int] = None
    #: Seconds from admission to execution start (0 for shed requests).
    queue_wait_s: float = 0.0
    #: Seconds spent executing (all attempts; 0 for shed requests).
    service_s: float = 0.0
    #: Seconds from admission to resolution.
    total_s: float = 0.0
    #: Execution attempts consumed (retries show up here).
    attempts: int = 0
    #: Verify requests resolved through a coalesced batch: batch size.
    batched: int = 0
    #: True when the breaker had tripped and the job ran degraded
    #: (serial, no worker pool).
    degraded: bool = False
    #: Additive latency breakdown (:data:`PHASES` -> seconds).  Empty for
    #: requests that never entered the service (client-side shed results
    #: built by the load generator).
    phases: dict = field(default_factory=dict)
    #: Offset (seconds) of this request's admission on the service's
    #: timeline (``ProvingService`` start) — the trace-export x axis.
    start_s: float = 0.0
    #: Optional worker-side split of the ``compute`` phase, from the
    #: PR 7 telemetry collector when one is installed: ``worker_tasks``,
    #: ``worker_busy_s`` (not part of the additive invariant).
    compute_detail: Optional[dict] = None

    @property
    def resolved_typed(self):
        """The robustness contract: a known status, and errors carry a
        taxonomy code."""
        if self.status not in STATUSES:
            return False
        if self.status == "ok":
            return True
        return bool(self.error_code)

    @property
    def phase_sum(self):
        """Sum of the recorded phase durations (0.0 when untracked)."""
        return sum(self.phases.values())

    def phase_error(self):
        """Signed accounting error: ``phase_sum - total_s``."""
        return self.phase_sum - self.total_s

    def phases_consistent(self, tol=PHASE_TOLERANCE_S):
        """The accounting invariant: recorded phases sum to ``total_s``
        within *tol* (vacuously true for untracked results, whose
        ``total_s`` must then be the 0.0 shed sentinel)."""
        if not self.phases:
            return self.total_s == 0.0
        return abs(self.phase_error()) <= tol

    def to_dict(self):
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "error_code": self.error_code,
            "error": self.error,
            "accepted": self.accepted,
            "proof_bytes": self.proof_bytes,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "service_s": round(self.service_s, 6),
            "total_s": round(self.total_s, 6),
            "attempts": self.attempts,
            "batched": self.batched,
            "degraded": self.degraded,
            "start_s": round(self.start_s, 6),
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "compute_detail": self.compute_detail,
        }


@dataclass
class Job:
    """Queue-resident form of an admitted request."""

    request_id: int
    kind: str
    future: Any  # asyncio.Future[JobResult]
    #: Absolute per-request budget in seconds (None = no deadline).
    deadline_s: Optional[float] = None
    #: perf_counter at admission.
    admitted_ts: float = field(default_factory=time.perf_counter)
    #: Verify payload: (proof, publics); prove jobs carry None.
    payload: Any = None
    #: Set by the service when the job leaves the outstanding count —
    #: exactly once, even if the caller cancelled the future meanwhile.
    accounted: bool = False
    #: Accumulated phase durations (:data:`PHASES` -> seconds).
    phases: dict = field(default_factory=dict)
    #: perf_counter of the previous phase mark (phase-clock cursor);
    #: initialized lazily to ``admitted_ts`` on the first mark.
    phase_cursor: Optional[float] = None

    def mark(self, phase):
        """Attribute the interval since the previous mark (or admission)
        to *phase*; marks accumulate, so a retried request's second
        compute attempt adds to the same ``compute`` bucket."""
        now = time.perf_counter()
        last = self.phase_cursor if self.phase_cursor is not None \
            else self.admitted_ts
        self.phases[phase] = self.phases.get(phase, 0.0) + (now - last)
        self.phase_cursor = now

    def finish_phases(self):
        """Close the phase clock: the tail since the last mark becomes
        ``settle``.  Returns the phase dict (shared, not copied — the
        job is terminal once resolved)."""
        self.mark("settle")
        return self.phases

    def elapsed(self):
        return time.perf_counter() - self.admitted_ts

    def remaining(self):
        """Seconds left on the request deadline (None = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    def expired(self):
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

"""Request/result model of the proving service.

Every request the service ever accepts — and every request it refuses —
ends as exactly one :class:`JobResult`, so "no request hangs and none
resolves untyped" is checkable by construction: a result's ``status`` is
one of :data:`STATUSES` and a non-``ok`` result always carries the
taxonomy ``error_code`` behind it (``admission``, ``timeout``, or
another :mod:`repro.resilience.errors` leaf).

Internally a :class:`Job` is the queue-resident form: the asyncio future
the submitter awaits, the admission timestamp the queue-wait and
deadline math hang off, and — for verify requests — the proof/publics
payload the batcher coalesces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Job", "JobResult", "KINDS", "STATUSES"]

#: Request kinds the service executes.
KINDS = ("prove", "verify")

#: Every terminal state of a request.  ``ok`` may still mean "proof
#: rejected" for verify requests (see :attr:`JobResult.accepted`) — the
#: *service* worked; the proof was invalid.
STATUSES = ("ok", "shed", "timeout", "error")


@dataclass
class JobResult:
    """The one terminal record of a request's life in the service."""

    request_id: int
    kind: str
    status: str
    #: Taxonomy code (``repro.resilience.errors``) for non-``ok``
    #: statuses; ``None`` on success.
    error_code: Optional[str] = None
    #: The typed one-line rendering (``error[<code>]: ...``) or ``None``.
    error: Optional[str] = None
    #: Verify requests: the verifier's verdict (``None`` for prove).
    accepted: Optional[bool] = None
    #: Prove requests: serialized proof size (``None`` for verify).
    proof_bytes: Optional[int] = None
    #: Seconds from admission to execution start (0 for shed requests).
    queue_wait_s: float = 0.0
    #: Seconds spent executing (all attempts; 0 for shed requests).
    service_s: float = 0.0
    #: Seconds from admission to resolution.
    total_s: float = 0.0
    #: Execution attempts consumed (retries show up here).
    attempts: int = 0
    #: Verify requests resolved through a coalesced batch: batch size.
    batched: int = 0
    #: True when the breaker had tripped and the job ran degraded
    #: (serial, no worker pool).
    degraded: bool = False

    @property
    def resolved_typed(self):
        """The robustness contract: a known status, and errors carry a
        taxonomy code."""
        if self.status not in STATUSES:
            return False
        if self.status == "ok":
            return True
        return bool(self.error_code)

    def to_dict(self):
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status,
            "error_code": self.error_code,
            "error": self.error,
            "accepted": self.accepted,
            "proof_bytes": self.proof_bytes,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "service_s": round(self.service_s, 6),
            "total_s": round(self.total_s, 6),
            "attempts": self.attempts,
            "batched": self.batched,
            "degraded": self.degraded,
        }


@dataclass
class Job:
    """Queue-resident form of an admitted request."""

    request_id: int
    kind: str
    future: Any  # asyncio.Future[JobResult]
    #: Absolute per-request budget in seconds (None = no deadline).
    deadline_s: Optional[float] = None
    #: perf_counter at admission.
    admitted_ts: float = field(default_factory=time.perf_counter)
    #: Verify payload: (proof, publics); prove jobs carry None.
    payload: Any = None
    #: Set by the service when the job leaves the outstanding count —
    #: exactly once, even if the caller cancelled the future meanwhile.
    accounted: bool = False

    def elapsed(self):
        return time.perf_counter() - self.admitted_ts

    def remaining(self):
        """Seconds left on the request deadline (None = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    def expired(self):
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

"""Schnorr's sigma protocol: knowledge of x such that P = x*G.

Three moves (Section II-A's interactive ZKP):

1. *commit*:   prover samples r, sends R = r*G,
2. *challenge*: verifier sends a random c,
3. *response*: prover sends s = r + c*x; verifier checks s*G == R + c*P.

The three defining properties are all constructive here:

- **completeness** — honest runs verify (:class:`SchnorrProver` /
  :class:`SchnorrVerifier`);
- **special soundness** — two accepting transcripts sharing a commitment
  yield the witness (:func:`extract_witness`), so a prover who can answer
  two challenges must know x;
- **honest-verifier zero-knowledge** — transcripts can be simulated
  without the witness (:func:`simulate_transcript`), so transcripts leak
  nothing.

:func:`fiat_shamir_prove` derives the challenge from a hash of the
transcript, producing the non-interactive variant [21] the paper cites as
the bridge to zk-SNARKs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.resilience.errors import StageOrderError

__all__ = [
    "SchnorrProof",
    "SchnorrProver",
    "SchnorrVerifier",
    "extract_witness",
    "fiat_shamir_prove",
    "fiat_shamir_verify",
    "simulate_transcript",
]


def _encode_point(group, point):
    """Canonical byte encoding of a point (affine, fixed width)."""
    aff = point.to_affine()
    if aff is None:
        return b"\x00" * 8
    if hasattr(group.ops, "fq"):
        fq = group.ops.fq
        return fq.to_bytes(aff[0]) + fq.to_bytes(aff[1])
    fq = group.ops.tower.fq
    return b"".join(fq.to_bytes(c) for c in (*aff[0], *aff[1]))


@dataclass(frozen=True)
class SchnorrProof:
    """A (possibly non-interactive) transcript: commitment, challenge,
    response."""

    commitment: object  # R = r*G
    challenge: int      # c
    response: int       # s = r + c*x  (mod group order)


class SchnorrProver:
    """The prover's side of one interactive session.

    Holds the witness ``x`` for the public point ``P = x*G``.  A fresh
    nonce is drawn per session; reusing a nonce across sessions leaks the
    witness (exactly what :func:`extract_witness` demonstrates).
    """

    def __init__(self, group, witness):
        self.group = group
        self.witness = witness % group.order
        self.public = group.generator * self.witness
        self._nonce = None

    def commit(self, rng):
        """Move 1: sample the nonce and send the commitment R = r*G."""
        self._nonce = rng.randrange(1, self.group.order)
        return self.group.generator * self._nonce

    def respond(self, challenge):
        """Move 3: answer the verifier's challenge."""
        if self._nonce is None:
            raise StageOrderError("commit() must be called before respond()")
        s = (self._nonce + challenge * self.witness) % self.group.order
        self._nonce = None  # single-use
        return s


class SchnorrVerifier:
    """The verifier's side: issue a challenge, then check the equation."""

    def __init__(self, group, public):
        self.group = group
        self.public = public
        self._state = None

    def challenge(self, commitment, rng):
        """Move 2: record the commitment and send a uniform challenge."""
        c = rng.randrange(self.group.order)
        self._state = (commitment, c)
        return c

    def check(self, response):
        """Final check: ``s*G == R + c*P``."""
        if self._state is None:
            raise StageOrderError("challenge() must be called before check()")
        commitment, c = self._state
        self._state = None
        lhs = self.group.generator * response
        rhs = commitment + self.public * c
        return lhs == rhs


def verify_transcript(group, public, proof):
    """Stateless transcript check (used by both NI and extractor paths)."""
    lhs = group.generator * proof.response
    rhs = proof.commitment + public * proof.challenge
    return lhs == rhs


def _hash_challenge(group, public, commitment, message):
    h = hashlib.sha256()
    h.update(b"repro/schnorr/v1")
    h.update(_encode_point(group, group.generator))
    h.update(_encode_point(group, public))
    h.update(_encode_point(group, commitment))
    h.update(message)
    return int.from_bytes(h.digest(), "big") % group.order


def fiat_shamir_prove(group, witness, rng, message=b""):
    """Non-interactive proof of knowledge of ``witness`` (Fiat-Shamir).

    The challenge is the hash of (generator, public point, commitment,
    message), so no verifier interaction is needed — the transform the
    paper cites as the route from interactive ZKPs to zk-SNARKs.
    """
    witness %= group.order
    public = group.generator * witness
    r = rng.randrange(1, group.order)
    commitment = group.generator * r
    c = _hash_challenge(group, public, commitment, message)
    s = (r + c * witness) % group.order
    return public, SchnorrProof(commitment=commitment, challenge=c, response=s)


def fiat_shamir_verify(group, public, proof, message=b""):
    """Verify a Fiat-Shamir proof: recompute the challenge, check the
    transcript."""
    expected = _hash_challenge(group, public, proof.commitment, message)
    if proof.challenge != expected:
        return False
    return verify_transcript(group, public, proof)


def extract_witness(group, proof_a, proof_b):
    """Special soundness: recover x from two accepting transcripts that
    share a commitment but differ in challenge.

    ``s1 - s2 = (c1 - c2) * x``, so ``x = (s1 - s2) / (c1 - c2)``.
    Raises ``ValueError`` if the transcripts do not share a commitment or
    have equal challenges.
    """
    if proof_a.commitment != proof_b.commitment:
        raise ValueError("transcripts must share a commitment")
    dc = (proof_a.challenge - proof_b.challenge) % group.order
    if dc == 0:
        raise ValueError("transcripts must have distinct challenges")
    ds = (proof_a.response - proof_b.response) % group.order
    return ds * pow(dc, -1, group.order) % group.order


def simulate_transcript(group, public, rng):
    """Honest-verifier zero-knowledge: produce an accepting transcript
    *without* the witness by choosing (c, s) first and solving for R."""
    c = rng.randrange(group.order)
    s = rng.randrange(group.order)
    commitment = group.generator * s - public * c
    return SchnorrProof(commitment=commitment, challenge=c, response=s)

"""Interactive zero-knowledge proofs (Section II-A of the paper).

The paper contrasts *interactive* ZKPs (a challenge/response conversation)
with the non-interactive zk-SNARK it profiles.  This package implements the
canonical interactive protocol — Schnorr's sigma protocol for knowledge of
a discrete logarithm — over the same elliptic-curve groups as the Groth16
stack, plus the Fiat-Shamir transform [21] that removes the interaction.

It exists to make the background concrete and testable: completeness,
special soundness (a rewinding extractor), and honest-verifier zero
knowledge (a transcript simulator) are all implemented and exercised by
the test suite.
"""

from repro.sigma.schnorr import (
    SchnorrProof,
    SchnorrProver,
    SchnorrVerifier,
    extract_witness,
    fiat_shamir_prove,
    fiat_shamir_verify,
    simulate_transcript,
)

__all__ = [
    "SchnorrProof",
    "SchnorrProver",
    "SchnorrVerifier",
    "extract_witness",
    "fiat_shamir_prove",
    "fiat_shamir_verify",
    "simulate_transcript",
]

"""``repro.analyze.code`` — static analysis over the codebase itself.

The circuit analyzer (PR 1) checks what we *prove*; this package checks
what we *run*: an AST-level framework with a module import/call graph
(:mod:`~repro.analyze.code.graph`) and five invariant check families —
worker-safety (RC1xx), determinism (RC2xx), error-discipline (RC3xx),
guard-idiom (RC4xx) and deadline-poll (RC5xx) — surfaced through
``python -m repro codelint``.  See docs/CODELINT.md for the catalog.
"""

from repro.analyze.code.analyzer import CODE_PASSES, analyze_code, default_root
from repro.analyze.code.graph import CodeIndex, FunctionInfo
from repro.analyze.code.model import CodelintConfig, SourceModule, load_tree

__all__ = [
    "CODE_PASSES",
    "CodeIndex",
    "CodelintConfig",
    "FunctionInfo",
    "SourceModule",
    "analyze_code",
    "default_root",
    "load_tree",
]

"""RC3xx error-discipline: every stage-reachable failure ends typed.

The PR 3 chaos contract: anything the workflow can raise must be a
``repro.resilience.errors`` taxonomy leaf (so the retry policy can
classify it and the CLI can print a stable ``error[<code>]:`` line) or a
plain ``ValueError``/``TypeError`` input guard.

========  ========  ====================================================
RC301     error     stage-reachable code raises an untyped builtin
                    (RuntimeError, KeyError, OSError, ...)
RC302     error     stage-reachable code raises bare Exception /
                    BaseException
========  ========  ====================================================

Bare re-raises, raises of variables, and raises through factory calls
are skipped — the analysis only flags what it can prove.  Modules
matching ``error_exempt_modules`` (telemetry/modeling infrastructure)
are out of scope; their install-time guards are programmer errors, not
pipeline failures.
"""

from __future__ import annotations

import ast

from repro.analyze.code.graph import dotted_name, match_any
from repro.analyze.diagnostics import ERROR, Diagnostic

__all__ = ["check_error_discipline"]

#: Builtin exceptions that signal an *untyped* failure when raised on a
#: stage path.  (ValueError/TypeError and their subclasses are the
#: sanctioned input-guard exceptions; everything taxonomy-derived is
#: handled via the class hierarchy.)
_UNTYPED_BUILTINS = frozenset({
    "RuntimeError", "KeyError", "IndexError", "LookupError",
    "ArithmeticError", "ZeroDivisionError", "OverflowError",
    "OSError", "IOError", "EOFError", "StopIteration",
    "NotImplementedError", "AttributeError", "AssertionError",
    "SystemError", "MemoryError",
})

_BROAD = frozenset({"Exception", "BaseException"})


def _allowed_leaves(index):
    """Leaf class names stage code may raise: the configured allowlist
    plus everything transitively derived from it or from ReproError."""
    seeds = set(index.config.allowed_raises) | {"ReproError"}
    allowed = set(seeds)
    for qual in index.subclasses_of(seeds):
        allowed.add(qual.rpartition(".")[2])
    return allowed


def check_error_discipline(index):
    """Yield ``(module_name, Diagnostic)`` for the RC3xx family."""
    allowed = _allowed_leaves(index)
    exempt = index.config.error_exempt_modules
    for qual in sorted(index.stage_reachable()):
        fn = index.functions.get(qual)
        if fn is None or match_any(fn.module, exempt):
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            else:
                name = dotted_name(exc)
            if name is None:
                continue  # computed expression; nothing provable
            leaf = name.rpartition(".")[2]
            resolved = index.resolve_name(fn, name)
            if resolved in index.classes:
                leaf = resolved.rpartition(".")[2]
            elif resolved in index.functions:
                continue  # factory function; its body is checked itself
            elif leaf[:1].islower():
                continue  # a variable holding an exception instance
            if leaf in allowed:
                continue
            if leaf in _BROAD:
                yield fn.module, Diagnostic(
                    code="RC302", severity=ERROR,
                    message=f"{fn.name!r} raises bare {leaf} on a "
                            f"stage-reachable path; the retry policy "
                            f"cannot classify it",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="raise a repro.resilience.errors leaf",
                )
            elif leaf in _UNTYPED_BUILTINS or resolved in index.classes:
                yield fn.module, Diagnostic(
                    code="RC301", severity=ERROR,
                    message=f"{fn.name!r} raises untyped {leaf} on a "
                            f"stage-reachable path; every workflow "
                            f"failure must be a taxonomy leaf or a "
                            f"ValueError/TypeError input guard",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="raise a repro.resilience.errors leaf "
                               "with a stable error[<code>] one-liner",
                )

"""Module-level import/call graph over the parsed source tree.

The check families reason about *reachability*, not text: a function is
**worker-reachable** when a registered worker task (an entry of the
module-level ``TASKS`` dict) can call into it, and **stage-reachable**
when a ``Workflow`` stage body can.  :class:`CodeIndex` builds the
function table, resolves imports (including the repo's lazy in-function
imports and package re-exports), and derives a conservative call graph:

- names and dotted paths resolve through the alias chain
  (``from repro.groth16 import prove`` -> ``repro.groth16.prover.prove``);
- ``self.method()`` resolves to the enclosing class;
- attribute calls on unresolvable receivers fall back to class-hierarchy
  style matching by method name (``pool.map`` -> ``WorkerPool.map``),
  skipping a denylist of container-protocol names too generic to mean
  anything (``append``, ``items``, ...).

Over-approximation is the safe direction here: an extra edge widens the
set of code the discipline checks scrutinize; a missing edge would let a
violation hide.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field

__all__ = ["CodeIndex", "FunctionInfo", "dotted_name", "match_any"]

#: Attribute names never resolved by bare-name matching: the container /
#: string protocol, where a method-name match is overwhelmingly a stdlib
#: call, not one of ours.
GENERIC_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "copy", "sort",
    "count", "index", "items", "keys", "values", "get", "setdefault",
    "update", "add", "discard", "union", "join", "split", "rsplit",
    "strip", "lstrip", "rstrip", "startswith", "endswith", "replace",
    "format", "encode", "decode", "lower", "upper", "partition",
    "rpartition", "read", "write", "readlines", "flush", "group",
    "groups", "match", "search",
})

#: Module-level slot names whose ``is None`` guard discipline RC4xx/RC5xx
#: enforce (auto-discovered per module; see :meth:`CodeIndex.slots`).
SLOT_NAMES = ("CURRENT", "DEADLINE")


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def match_any(name, patterns):
    """True when *name* matches one of the fnmatch *patterns*."""
    return any(fnmatch.fnmatchcase(name, pat) for pat in patterns)


@dataclass
class FunctionInfo:
    """One function or method in the tree."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    cls: str = None  # enclosing class name, for methods
    aliases: dict = field(default_factory=dict)  # in-function imports
    nested: bool = False  # defined inside another function

    @property
    def is_public(self):
        return not self.name.startswith("_") and not self.nested

    @property
    def lineno(self):
        return self.node.lineno


def _collect_aliases(body_nodes, package):
    """alias -> dotted target for Import/ImportFrom among *body_nodes*."""
    aliases = {}
    for node in body_nodes:
        if isinstance(node, ast.Import):
            for a in node.names:
                top = a.name.split(".")[0]
                aliases[a.asname or top] = a.name if a.asname else top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative import, resolved against the package
                parts = package.split(".") if package else []
                parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{base}.{a.name}" if base else a.name
    return aliases


class CodeIndex:
    """Queryable index over a ``{name: SourceModule}`` tree."""

    def __init__(self, modules, config):
        self.modules = modules
        self.config = config
        self.functions = {}        # qualname -> FunctionInfo
        self.classes = {}          # qualname -> ast.ClassDef
        self.class_bases = {}      # qualname -> [raw base names]
        self.methods_by_name = {}  # bare name -> [qualnames]
        self.module_aliases = {}   # module -> {alias: dotted target}
        self.module_globals = {}   # module -> set of module-level names
        self.mutable_globals = {}  # module -> names bound to mutable literals
        self.task_registries = {}  # module -> {task name: value node}
        self._slots = set()        # (module, attr) CURRENT/DEADLINE slots
        self._calls = {}           # qualname -> frozenset of callee qualnames
        for mod in modules.values():
            self._index_module(mod)
        self._reach_cache = {}

    # -- construction -------------------------------------------------------------

    def _index_module(self, mod):
        top_aliases = _collect_aliases(mod.tree.body, mod.package)
        self.module_aliases[mod.name] = top_aliases
        globs = set()
        mutable = set()
        for node in mod.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, node, cls=None)
                globs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
                globs.add(node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                for tgt in targets:
                    if not isinstance(tgt, ast.Name):
                        continue
                    globs.add(tgt.id)
                    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                                          ast.ListComp, ast.DictComp,
                                          ast.SetComp)):
                        mutable.add(tgt.id)
                    if (tgt.id in SLOT_NAMES
                            and isinstance(value, ast.Constant)
                            and value.value is None):
                        self._slots.add((mod.name, tgt.id))
                    if (tgt.id == self.config.worker_registry
                            and isinstance(value, ast.Dict)):
                        self.task_registries[mod.name] = {
                            (k.value if isinstance(k, ast.Constant) else None): v
                            for k, v in zip(value.keys, value.values)
                        }
        globs.update(top_aliases)
        self.module_globals[mod.name] = globs
        self.mutable_globals[mod.name] = mutable

    def _index_class(self, mod, node):
        qual = f"{mod.name}.{node.name}"
        self.classes[qual] = node
        self.class_bases[qual] = [dotted_name(b) for b in node.bases
                                  if dotted_name(b)]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, item, cls=node.name)

    def _index_function(self, mod, node, cls):
        qual = (f"{mod.name}.{cls}.{node.name}" if cls
                else f"{mod.name}.{node.name}")
        info = FunctionInfo(
            qualname=qual, module=mod.name, name=node.name, node=node,
            cls=cls,
            aliases=_collect_aliases(ast.walk(node), mod.package),
        )
        self.functions[qual] = info
        if cls:
            self.methods_by_name.setdefault(node.name, []).append(qual)
        # Nested defs are indexed too (under the outer function's name).
        for inner in ast.walk(node):
            if inner is not node and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{qual}.{inner.name}"
                if nested not in self.functions:
                    self.functions[nested] = FunctionInfo(
                        qualname=nested, module=mod.name, name=inner.name,
                        node=inner, cls=cls, aliases=info.aliases,
                        nested=True)

    # -- name resolution ----------------------------------------------------------

    @property
    def slots(self):
        """``(module, attr)`` pairs of discovered CURRENT/DEADLINE slots."""
        return self._slots

    def resolve_export(self, qual, _depth=0):
        """Chase package re-exports: ``repro.groth16.prove`` ->
        ``repro.groth16.prover.prove``."""
        if _depth > 8 or qual is None:
            return qual
        if qual in self.functions or qual in self.classes:
            return qual
        prefix, _, leaf = qual.rpartition(".")
        alias = self.module_aliases.get(prefix, {}).get(leaf)
        if alias and alias != qual:
            return self.resolve_export(alias, _depth + 1)
        return qual

    def resolve_name(self, fn, name):
        """Resolve dotted *name* inside function *fn* to a qualname
        (best effort; ``None`` when it cannot be pinned down)."""
        head, _, rest = name.partition(".")
        mod = fn.module
        target = None
        if head == "self" and fn.cls and rest:
            meth, _, tail = rest.partition(".")
            base = f"{mod}.{fn.cls}.{meth}"
            return self.resolve_export(f"{base}.{tail}" if tail else base)
        if head in fn.aliases:
            target = fn.aliases[head]
        elif head in self.module_aliases.get(mod, {}):
            target = self.module_aliases[mod][head]
        elif f"{mod}.{head}" in self.functions or f"{mod}.{head}" in self.classes:
            target = f"{mod}.{head}"
        elif head in self.module_globals.get(mod, ()):
            target = f"{mod}.{head}"
        else:
            return None
        if rest:
            target = f"{target}.{rest}"
        return self.resolve_export(target)

    def is_module(self, qual):
        return qual in self.modules

    # -- slots --------------------------------------------------------------------

    def slot_read(self, fn, node):
        """Identify a CURRENT/DEADLINE slot read.

        Returns ``(module, attr)`` when the Load-context expression *node*
        reads a discovered slot — either ``<modalias>.CURRENT`` from
        anywhere or a bare ``CURRENT`` name inside its defining module —
        else ``None``.
        """
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            base = dotted_name(node.value)
            if base is not None and node.attr in SLOT_NAMES:
                resolved = self.resolve_name(fn, base)
                if resolved is None and base in self.modules:
                    resolved = base
                if resolved in self.modules and \
                        (resolved, node.attr) in self._slots:
                    return (resolved, node.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if (fn.module, node.id) in self._slots:
                return (fn.module, node.id)
        return None

    # -- call graph ---------------------------------------------------------------

    def call_targets(self, fn):
        """Set of function qualnames *fn* may call (conservative)."""
        cached = self._calls.get(fn.qualname)
        if cached is not None:
            return cached
        targets = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            targets.update(self._resolve_call(fn, node))
        targets = frozenset(targets)
        self._calls[fn.qualname] = targets
        return targets

    def _resolve_call(self, fn, call):
        name = dotted_name(call.func)
        if name is not None:
            qual = self.resolve_name(fn, name)
            if qual in self.functions:
                return {qual}
            if qual in self.classes:
                init = f"{qual}.__init__"
                return {init} if init in self.functions else set()
        # Fall back: method-name matching for attribute calls on
        # receivers we cannot type (pool.map, policy.execute_stage, ...).
        if isinstance(call.func, ast.Attribute):
            meth = call.func.attr
            if meth in GENERIC_METHODS or meth.startswith("__"):
                return set()
            return set(self.methods_by_name.get(meth, ()))
        return set()

    # -- reachability -------------------------------------------------------------

    def worker_roots(self):
        """Qualnames of functions registered in a worker TASKS dict."""
        roots = set()
        for mod_name, registry in self.task_registries.items():
            mod = self.modules[mod_name]
            fake = FunctionInfo(qualname=f"{mod_name}.<registry>",
                                module=mod_name, name="<registry>",
                                node=mod.tree)
            for value in registry.values():
                name = dotted_name(value)
                if name is None:
                    continue
                qual = self.resolve_name(fake, name)
                if qual in self.functions:
                    roots.add(qual)
        return roots

    def stage_roots(self):
        """Qualnames matching the configured stage-root patterns."""
        patterns = self.config.stage_roots
        return {q for q in self.functions if match_any(q, patterns)}

    def reachable_from(self, roots):
        """Transitive closure of *roots* over the call graph."""
        key = frozenset(roots)
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            qual = frontier.pop()
            fn = self.functions.get(qual)
            if fn is None:
                continue
            for callee in self.call_targets(fn):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        self._reach_cache[key] = seen
        return seen

    def worker_reachable(self):
        return self.reachable_from(self.worker_roots())

    def stage_reachable(self):
        """Worker tasks run stage work too, so both root sets count."""
        return self.reachable_from(self.stage_roots() | self.worker_roots())

    # -- class hierarchy ----------------------------------------------------------

    def subclasses_of(self, base_names):
        """Qualnames (and bare names) of classes deriving — transitively —
        from any name in *base_names* (matched on the base's last path
        component, so ``errors.ReproError`` and ``ReproError`` both hit)."""
        base_leaves = {b.rpartition(".")[2] for b in base_names}
        out = set()
        changed = True
        while changed:
            changed = False
            for qual, bases in self.class_bases.items():
                if qual in out:
                    continue
                for b in bases:
                    leaf = b.rpartition(".")[2]
                    if leaf in base_leaves:
                        out.add(qual)
                        base_leaves.add(qual.rpartition(".")[2])
                        changed = True
                        break
        return out

"""RC4xx guard-idiom: telemetry slots stay behind ``is None`` guards.

Every observability subsystem exposes one process-global slot
(``metrics.CURRENT``, ``spans.CURRENT``, ``faults.CURRENT``,
``resilience.DEADLINE``, ...) that is ``None`` unless installed, so an
uninstrumented run pays a single attribute read.  Code outside the
defining module must therefore *guard* every slot use:

========  ========  ====================================================
RC401     error     slot use (direct or through a local binding) not
                    dominated by an ``is None`` / ``is not None`` guard
RC402     error     metric name literal does not match
                    ``repro_<subsystem>_<name>`` (``repro(_[a-z0-9]+)+``)
========  ========  ====================================================

The dominance analysis recognizes the idioms the codebase actually uses:
an enclosing ``if X is not None:`` (use in the body), ``if X is None:``
(use in the else branch), conditional expressions, ``and`` chains, and
the early-return form ``x = mod.CURRENT`` / ``if x is None: return``.
"""

from __future__ import annotations

import ast
import re

from repro.analyze.diagnostics import ERROR, Diagnostic

__all__ = ["check_guard_idiom"]

#: Mirror of repro.obs.metrics._NAME_RE — the registry enforces this at
#: runtime; the lint catches it before the run does.
_NAME_RE = re.compile(r"^repro(_[a-z0-9]+)+$")

#: Metric-emitting methods whose first argument is the metric name.
_METRIC_METHODS = frozenset({"inc", "observe", "set_gauge"})

_TERMINAL = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _parents(root):
    out = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            out[id(child)] = parent
    return out


def _contains(stmt, node):
    return any(n is node for n in ast.walk(stmt))


class _Key:
    """What a guard must test: a local name or a slot expression."""

    def __init__(self, var=None, slot=None, index=None, fn=None):
        self.var, self.slot, self.index, self.fn = var, slot, index, fn

    def matches(self, expr):
        if self.var is not None:
            return isinstance(expr, ast.Name) and expr.id == self.var
        return self.index.slot_read(self.fn, expr) == self.slot


def _positive_guard(test, key):
    """True for ``X is not None`` / truthy ``X``."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.IsNot) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        return key.matches(test.left)
    return key.matches(test)


def _negative_guard(test, key):
    """True for ``X is None`` / ``not X``."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.Is) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        return key.matches(test.left)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return key.matches(test.operand)
    return False


def _in_field(container, field_stmts, node):
    return any(_contains(s, node) for s in field_stmts)


def _guarded(node, key, parents, fn_node):
    """Is *node* dominated by a None-guard on *key*?"""
    child = node
    while id(child) in parents:
        parent = parents[id(child)]
        if isinstance(parent, (ast.If, ast.While)):
            if _in_field(parent, parent.body, node) \
                    and _positive_guard(parent.test, key):
                return True
            if _in_field(parent, parent.orelse, node) \
                    and _negative_guard(parent.test, key):
                return True
        elif isinstance(parent, ast.IfExp):
            if _contains(parent.body, node) \
                    and _positive_guard(parent.test, key):
                return True
            if _contains(parent.orelse, node) \
                    and _negative_guard(parent.test, key):
                return True
        elif isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
            for i, value in enumerate(parent.values):
                if _contains(value, node):
                    if any(_positive_guard(v, key)
                           for v in parent.values[:i]):
                        return True
                    break
        # Early-return guard among preceding siblings of any enclosing
        # statement: ``if x is None: return`` before the use.
        if isinstance(parent, (ast.If, ast.For, ast.While, ast.With,
                               ast.Try, ast.FunctionDef,
                               ast.AsyncFunctionDef, ast.Module)):
            for block in _stmt_blocks(parent):
                for i, stmt in enumerate(block):
                    if _contains(stmt, node):
                        for prev in block[:i]:
                            if isinstance(prev, ast.If) and prev.body \
                                    and isinstance(prev.body[-1], _TERMINAL) \
                                    and _negative_guard(prev.test, key):
                                return True
                        break
        if parent is fn_node:
            break
        child = parent
    return False


def _is_deref(parent, node):
    """True when *node* is dereferenced — the failure mode of an
    unguarded None slot (attribute access, subscript, or call)."""
    return (isinstance(parent, ast.Attribute) and parent.value is node) \
        or (isinstance(parent, ast.Subscript) and parent.value is node) \
        or (isinstance(parent, ast.Call) and parent.func is node)


def _stmt_blocks(node):
    for fname in ("body", "orelse", "finalbody"):
        block = getattr(node, fname, None)
        if isinstance(block, list) and block \
                and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(node, "handlers", ()):
        yield handler.body


def _slot_uses(index, fn):
    """Yield ``(node, key)`` for every cross-module slot use in *fn*."""
    parents = _parents(fn.node)
    tracked = {}  # local var name -> (slot, assign lineno)
    binding_reads = set()  # id() of slot reads that only feed a binding
    reads = []
    for node in ast.walk(fn.node):
        slot = index.slot_read(fn, node)
        if slot is not None and slot[0] != fn.module:
            reads.append((node, slot))
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            # ``t = mod.CURRENT`` and ``t = mod.CURRENT if traced else
            # None`` both bind the slot; the *uses* of t are checked.
            for sub in ast.walk(node.value):
                vslot = index.slot_read(fn, sub)
                if vslot is not None and vslot[0] != fn.module:
                    tracked[node.targets[0].id] = (vslot, node.lineno)
                    binding_reads.add(id(sub))
    for node, slot in reads:
        parent = parents.get(id(node))
        # The read *is* a guard test or the value of a tracked binding;
        # only dereferences can crash on a None slot.
        if isinstance(parent, ast.Compare) and node is parent.left:
            continue
        if id(node) in binding_reads or not _is_deref(parent, node):
            continue
        yield node, _Key(slot=slot, index=index, fn=fn), parents, slot
    for var, (slot, assign_line) in tracked.items():
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and node.id == var \
                    and isinstance(node.ctx, ast.Load) \
                    and node.lineno > assign_line:
                parent = parents.get(id(node))
                if not _is_deref(parent, node):
                    continue
                yield node, _Key(var=var), parents, slot


def check_guard_idiom(index):
    """Yield ``(module_name, Diagnostic)`` for the RC4xx family."""
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if fn.nested:
            continue  # covered by the enclosing function's walk
        for node, key, parents, slot in _slot_uses(index, fn):
            if _guarded(node, key, parents, fn.node):
                continue
            slot_name = f"{slot[0]}.{slot[1]}"
            yield fn.module, Diagnostic(
                code="RC401", severity=ERROR,
                message=f"{fn.name!r} uses telemetry slot {slot_name} "
                        f"without an 'is None' guard; the slot is None "
                        f"on uninstrumented runs",
                line=node.lineno, symbol=fn.qualname,
                suggestion=f"guard with 'if {slot[1]} is not None:'",
            )
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_METHODS and node.args):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                literal = arg.value
            elif isinstance(arg, ast.JoinedStr):
                literal = "".join(
                    part.value if isinstance(part, ast.Constant) else "x"
                    for part in arg.values)
            else:
                continue
            if not _NAME_RE.match(literal):
                yield fn.module, Diagnostic(
                    code="RC402", severity=ERROR,
                    message=f"metric name {literal!r} does not match "
                            f"repro_<subsystem>_<name> "
                            f"({_NAME_RE.pattern}); the registry would "
                            f"reject it at runtime",
                    line=arg.lineno, symbol=fn.qualname,
                    suggestion="rename to repro_<subsystem>_<name>",
                )

"""Orchestration for the codebase analyzer (``repro codelint``).

:func:`analyze_code` parses a source tree (never importing it), builds
the :class:`~repro.analyze.code.graph.CodeIndex`, runs the selected RC
check families, applies inline suppressions, and returns one
:class:`~repro.analyze.diagnostics.AnalysisReport` per module — the same
report type the circuit analyzer emits, so both lint verbs share the
renderers, baselines and suppression machinery.
"""

from __future__ import annotations

import os

from repro.analyze.code.deadline import check_deadline_polls
from repro.analyze.code.determinism import check_determinism
from repro.analyze.code.discipline import check_error_discipline
from repro.analyze.code.graph import CodeIndex
from repro.analyze.code.guards import check_guard_idiom
from repro.analyze.code.model import CodelintConfig, load_tree
from repro.analyze.code.worker_safety import check_worker_safety
from repro.analyze.diagnostics import AnalysisReport, Diagnostic

__all__ = ["CODE_PASSES", "analyze_code", "default_root"]

#: Ordered pass registry: family name -> callable(CodeIndex) yielding
#: ``(module_name, Diagnostic)`` pairs.
CODE_PASSES = {
    "worker": check_worker_safety,        # RC1xx
    "determinism": check_determinism,     # RC2xx
    "errors": check_error_discipline,     # RC3xx
    "guards": check_guard_idiom,          # RC4xx
    "deadline": check_deadline_polls,     # RC5xx
}


def default_root():
    """The installed ``repro`` package directory — what the bare
    ``repro codelint`` invocation analyzes."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def analyze_code(root=None, *, config=None, passes=None, suppress=(),
                 baseline=None):
    """Run the codebase analyzer over the source tree at *root*.

    Parameters
    ----------
    root:
        Directory (package or plain) or single ``.py`` file; defaults to
        the installed ``repro`` package.
    config:
        :class:`~repro.analyze.code.model.CodelintConfig`; the default
        describes this repository.
    passes:
        Iterable of family names from :data:`CODE_PASSES` (default all).
    suppress:
        Diagnostic codes to drop globally (inline
        ``# codelint: ignore[...]`` comments are always honored).
    baseline:
        Set of accepted fingerprints
        (:func:`repro.analyze.diagnostics.load_baseline`).

    Returns
    -------
    list[AnalysisReport]
        One report per module, sorted by module name; clean modules are
        included (renderers may elide them).
    """
    root = root if root is not None else default_root()
    config = config or CodelintConfig()
    names = list(passes) if passes is not None else list(CODE_PASSES)
    unknown = [n for n in names if n not in CODE_PASSES]
    if unknown:
        raise ValueError(f"unknown codelint pass(es) {unknown}; "
                         f"choose from {sorted(CODE_PASSES)}")
    modules = load_tree(root)
    index = CodeIndex(modules, config)

    per_module = {name: [] for name in modules}
    seen = {name: set() for name in modules}
    for name in names:
        for mod_name, diag in CODE_PASSES[name](index):
            mod = modules.get(mod_name)
            if mod is None:
                continue
            if diag.line is not None and mod.suppressed(diag.code, diag.line):
                continue
            # Nested defs are walked by both their own FunctionInfo and
            # the enclosing function's; collapse to one finding.
            key = (diag.code, diag.line, diag.message)
            if key in seen[mod_name]:
                continue
            seen[mod_name].add(key)
            per_module[mod_name].append(diag)

    reports = []
    for mod_name in sorted(modules):
        mod = modules[mod_name]
        n_functions = sum(1 for f in index.functions.values()
                          if f.module == mod_name and not f.nested)
        report = AnalysisReport(
            circuit=mod_name,
            stats={"path": mod.path, "functions": n_functions,
                   "lines": len(mod.lines)},
            diagnostics=list(per_module[mod_name]),
        )
        report.finalize()
        if suppress or baseline:
            report = report.filtered(suppress=suppress, baseline=baseline)
        reports.append(report)
    return reports

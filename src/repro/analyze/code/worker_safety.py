"""RC1xx worker-safety: a static race detector for the fork pool.

Functions dispatched through ``repro.parallel.tasks`` run inside forked
worker processes.  The pool's determinism contract (docs/PARALLELISM.md)
requires each task to be a pure function of its plain-data payload:

========  ========  ====================================================
RC101     error     TASKS registers something that is not a module-level
                    function (lambda / nested def / unresolvable)
RC102     error     worker task signature is not exactly one positional
                    payload parameter
RC103     error     worker-reachable code writes shared module-global
                    state (``global`` rebinding, subscript/attribute
                    stores on module globals, cross-module slot writes)
RC104     warning   worker task declares a mutable default argument
========  ========  ====================================================

RC103 is the race detector proper: under the fork backend a write to a
module global mutates state the parent and sibling tasks may also see
(and under a future thread backend, *will* see).  Deliberate per-process
caches carry an inline ``# codelint: ignore[RC103]`` with a reason.
"""

from __future__ import annotations

import ast

from repro.analyze.code.graph import FunctionInfo, dotted_name
from repro.analyze.diagnostics import ERROR, WARNING, Diagnostic

__all__ = ["check_worker_safety"]


def _mutable_default(node):
    return isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp))


def _signature_violation(args):
    """Reason string when the signature breaks the payload contract."""
    n_pos = len(args.posonlyargs) + len(args.args)
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] == "self":  # methods never register; belt+braces
        n_pos -= 1
    if n_pos != 1:
        return f"takes {n_pos} positional parameters, expected 1 (payload)"
    if args.vararg or args.kwarg or args.kwonlyargs:
        return "takes *args/**kwargs/keyword-only parameters"
    if args.defaults:
        return "declares default values"
    return None


def _local_names(fn_node):
    """Names bound locally (params + simple assignments) in a function."""
    locals_ = set()
    for a in (fn_node.args.posonlyargs + fn_node.args.args
              + fn_node.args.kwonlyargs):
        locals_.add(a.arg)
    if fn_node.args.vararg:
        locals_.add(fn_node.args.vararg.arg)
    if fn_node.args.kwarg:
        locals_.add(fn_node.args.kwarg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            tgt = node.target
            for t in ast.walk(tgt):
                if isinstance(t, ast.Name):
                    locals_.add(t.id)
    return locals_


def _global_writes(index, fn):
    """Yield ``(lineno, description)`` for module-global mutations."""
    mod_globals = index.module_globals.get(fn.module, set())
    declared_global = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_ = _local_names(fn.node) - declared_global
    for node in ast.walk(fn.node):
        targets = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for tgt in targets:
            # Rebinding a declared-global name.
            if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                yield (node.lineno, f"rebinds module global {tgt.id!r}")
                continue
            # Subscript/attribute stores: walk to the base name.
            base = tgt
            depth = 0
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
                depth += 1
            if depth == 0 or not isinstance(base, ast.Name):
                # Cross-module writes (``mod.NAME = x``) have a dotted
                # base; everything else (locals, self) is fine.
                dotted = dotted_name(tgt.value) if isinstance(
                    tgt, (ast.Subscript, ast.Attribute)) else None
                if dotted and index.resolve_name(fn, dotted) in index.modules:
                    yield (node.lineno,
                           f"writes into module {dotted!r} from a worker")
                continue
            if base.id in locals_ or base.id == "self":
                continue
            if base.id in mod_globals:
                yield (node.lineno,
                       f"mutates module global {base.id!r} "
                       f"({'subscript' if isinstance(tgt, ast.Subscript) else 'attribute'} store)")


def check_worker_safety(index):
    """Yield ``(module_name, Diagnostic)`` for the RC1xx family."""
    # RC101/RC102/RC104 on the registry entries themselves.
    task_fns = []
    for mod_name, registry in index.task_registries.items():
        mod = index.modules[mod_name]
        for key, value in registry.items():
            label = key if key is not None else "<dynamic>"
            name = dotted_name(value)
            qual = None
            if name is not None:
                probe = FunctionInfo(qualname=f"{mod_name}.<registry>",
                                     module=mod_name, name="<registry>",
                                     node=mod.tree)
                qual = index.resolve_name(probe, name)
            info = index.functions.get(qual) if qual else None
            if info is None or info.cls is not None or info.nested:
                yield mod_name, Diagnostic(
                    code="RC101", severity=ERROR,
                    message=f"worker task {label!r} is not a module-level "
                            f"function (fork workers dispatch by reference; "
                            f"lambdas and nested defs capture parent state)",
                    line=value.lineno, symbol=f"TASKS[{label!r}]",
                    suggestion="register a top-level function",
                )
                continue
            task_fns.append(info)
            reason = _signature_violation(info.node.args)
            if reason is not None:
                yield info.module, Diagnostic(
                    code="RC102", severity=ERROR,
                    message=f"worker task {info.name!r} {reason}; the "
                            f"envelope calls tasks as fn(payload) with "
                            f"plain picklable data",
                    line=info.lineno, symbol=info.qualname,
                    suggestion="accept a single payload dict",
                )
            for default in (info.node.args.defaults
                            + [d for d in info.node.args.kw_defaults if d]):
                if _mutable_default(default):
                    yield info.module, Diagnostic(
                        code="RC104", severity=WARNING,
                        message=f"worker task {info.name!r} has a mutable "
                                f"default argument (shared across calls "
                                f"within one worker process)",
                        line=default.lineno, symbol=info.qualname,
                        suggestion="default to None and build inside",
                    )

    # RC103 over everything a worker can reach.
    for qual in sorted(index.worker_reachable()):
        fn = index.functions.get(qual)
        if fn is None:
            continue
        for lineno, description in _global_writes(index, fn):
            yield fn.module, Diagnostic(
                code="RC103", severity=ERROR,
                message=f"worker-reachable function {fn.name!r} "
                        f"{description}; forked tasks must not touch "
                        f"shared mutable state",
                line=lineno, symbol=fn.qualname,
                suggestion="pass data through the payload, or suppress "
                           "with a reason if this is a per-process cache",
            )

"""Source model of the codebase analyzer: modules, suppressions, config.

The code analyzer (docs/CODELINT.md) never *imports* the code it checks —
every module is parsed into an AST and analyzed purely statically, so
seeded-violation fixtures and the live tree go through the identical path.

Inline suppressions mirror ``noqa``/circomspect: a comment

    ``# codelint: ignore[RC103] -- per-process cache, never shared``

trailing the line a diagnostic is anchored to — or standing alone on the
line directly above it — drops that diagnostic (the ``-- reason`` tail
is free-form and encouraged).  Several codes may be listed
(``ignore[RC103,RC501]``); an empty list is invalid, never a wildcard —
suppressions are always explicit about what they silence.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

__all__ = [
    "CodelintConfig",
    "SourceModule",
    "load_tree",
    "parse_suppressions",
]

#: ``# codelint: ignore[RC101,RC202]`` with an optional ``-- reason`` tail.
_SUPPRESS_RE = re.compile(
    r"#\s*codelint:\s*ignore\[([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)\]"
)


@dataclass(frozen=True)
class CodelintConfig:
    """Tunable scope of the five check families.

    The defaults describe *this* repository (its worker registry, its
    ``Workflow`` stage methods, its hot kernels, its sanctioned clock
    homes); tests point the same checks at fixture trees by overriding
    the relevant fields.  All module patterns are :mod:`fnmatch` globs
    against dotted module names.
    """

    #: Name of the module-level dict mapping task names to worker
    #: functions (RC1xx roots).  Any module defining one contributes.
    worker_registry: str = "TASKS"

    #: Function qualname globs whose bodies start stage execution
    #: (RC2xx/RC3xx roots).  ``*`` so fixture trees with their own
    #: ``Workflow`` class match too.
    stage_roots: tuple = ("*Workflow.run_stage", "*Workflow._stage_*")

    #: Modules whose public loop-bearing functions must poll the
    #: cooperative Deadline (RC5xx).
    hot_modules: tuple = ("repro.msm.*", "repro.poly.ntt",
                          "repro.parallel.kernels")

    #: Modules sanctioned to read the monotonic measurement clocks
    #: (perf_counter / process_time / monotonic) — RC203.  The serving
    #: layer is a measurement layer: queue wait, deadline budgets and
    #: latency percentiles are its product, like the pool's task clocks.
    clock_modules: tuple = ("repro.obs.*", "repro.perf.*", "repro.harness.*",
                            "repro.workflow", "repro.parallel.pool",
                            "repro.resilience.*", "repro.serve.*")

    #: Modules sanctioned to read the wall clock (time.time etc.) —
    #: RC202.  The run ledger timestamps records; nothing else may.
    wallclock_modules: tuple = ("repro.obs.*",)

    #: Modules exempt from RC3xx error-discipline: telemetry/modeling
    #: infrastructure whose install-time guards are programmer errors,
    #: not pipeline failures (the chaos contract covers the pipeline).
    error_exempt_modules: tuple = ("repro.obs.*", "repro.perf.*")

    #: Exception classes stage-reachable code may raise besides the
    #: ``repro.resilience.errors`` taxonomy (and their subclasses).
    allowed_raises: tuple = ("ValueError", "TypeError")


@dataclass
class SourceModule:
    """One parsed source file: dotted name, AST, raw lines, suppressions."""

    name: str
    path: str
    tree: ast.Module
    lines: list = field(default_factory=list)
    #: line number -> set of suppressed codes on that line.
    suppressions: dict = field(default_factory=dict)

    @property
    def package(self):
        """Dotted package this module lives in (may be empty)."""
        return self.name.rpartition(".")[0]

    def suppressed(self, code, line):
        """True when *line* carries an inline suppression for *code* —
        trailing the line itself, or on the full-line comment above."""
        if code in self.suppressions.get(line, ()):
            return True
        above = line - 1
        return (code in self.suppressions.get(above, ())
                and 1 <= above <= len(self.lines)
                and self.lines[above - 1].lstrip().startswith("#"))


def parse_suppressions(lines):
    """Map of 1-based line number -> set of codes suppressed there."""
    out = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[i] = {c.strip() for c in match.group(1).split(",")}
    return out


def _module_name(root, path, prefix):
    rel = os.path.relpath(path, root)
    parts = rel[:-3].split(os.sep)  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if prefix:
        parts = [prefix] + parts
    return ".".join(parts) if parts else prefix


def _load_file(name, path):
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return SourceModule(name=name, path=path, tree=tree, lines=lines,
                        suppressions=parse_suppressions(lines))


def load_tree(root):
    """Parse every ``*.py`` under *root* into :class:`SourceModule` s.

    *root* may also be a single ``.py`` file (the per-fixture CLI mode).
    A directory containing ``__init__.py`` is treated as a package whose
    name prefixes every module (so ``src/repro`` loads as ``repro.*``);
    a plain directory yields top-level module names.
    """
    if os.path.isfile(root):
        name = os.path.basename(root)[:-3]
        return {name: _load_file(name, root)}
    if not os.path.isdir(root):
        raise ValueError(f"codelint root {root!r} is not a file or directory")
    prefix = (os.path.basename(os.path.abspath(root))
              if os.path.exists(os.path.join(root, "__init__.py")) else "")
    modules = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__" and not d.startswith("."))
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            name = _module_name(root, path, prefix)
            modules[name] = _load_file(name, path)
    return modules

"""RC5xx deadline-poll: hot kernel loops must stay cancellable.

The resilience layer's per-stage deadline (PR 3) is *cooperative*: a
kernel that never calls ``Deadline.check()`` cannot be timed out, so a
runaway MSM or NTT defeats the chaos contract.  RC501 requires every
public loop-bearing function in the configured hot modules to reach a
``DEADLINE`` poll — directly or through its callees (``msm_pippenger``
polls once per window, so ``msm_auto`` inherits the property).

========  ========  ====================================================
RC501     error     public function in a hot module contains a loop but
                    never reaches a ``resilience.DEADLINE.check()`` poll
========  ========  ====================================================

Intentionally unpolled leaves (e.g. the serial reference transforms the
differential suite compares against) carry an inline suppression.
"""

from __future__ import annotations

import ast

from repro.analyze.code.graph import match_any
from repro.analyze.diagnostics import ERROR, Diagnostic

__all__ = ["check_deadline_polls"]


def _has_loop(fn_node):
    return any(isinstance(n, (ast.For, ast.While, ast.AsyncFor))
               for n in ast.walk(fn_node))


def _polls_directly(index, fn):
    """True when *fn* contains ``<slot DEADLINE>.check(...)`` (through a
    module alias or a local binding of the slot)."""
    bound = set()  # locals holding the slot value
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and index.slot_read(fn, node.value) is not None \
                and index.slot_read(fn, node.value)[1] == "DEADLINE":
            bound.add(node.targets[0].id)
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "check"):
            continue
        recv = node.func.value
        slot = index.slot_read(fn, recv)
        if slot is not None and slot[1] == "DEADLINE":
            return True
        if isinstance(recv, ast.Name) and recv.id in bound:
            return True
    return False


def _polls(index, fn, seen):
    if fn.qualname in seen:
        return False
    seen.add(fn.qualname)
    if _polls_directly(index, fn):
        return True
    for callee in index.call_targets(fn):
        target = index.functions.get(callee)
        if target is not None and _polls(index, target, seen):
            return True
    return False


def check_deadline_polls(index):
    """Yield ``(module_name, Diagnostic)`` for the RC5xx family."""
    hot = index.config.hot_modules
    for qual in sorted(index.functions):
        fn = index.functions[qual]
        if not match_any(fn.module, hot) or not fn.is_public:
            continue
        if fn.name == "__init__" or not _has_loop(fn.node):
            continue
        if _polls(index, fn, set()):
            continue
        yield fn.module, Diagnostic(
            code="RC501", severity=ERROR,
            message=f"hot-path function {fn.name!r} loops but never "
                    f"polls the cooperative Deadline; a stage timeout "
                    f"cannot interrupt it",
            line=fn.lineno, symbol=fn.qualname,
            suggestion="poll 'if resilience.DEADLINE is not None: "
                       "resilience.DEADLINE.check()' inside the loop, "
                       "or suppress for serial reference kernels",
        )

"""RC2xx determinism: no ambient entropy or wall clock in measured paths.

The paper's runs are reproducible because every random draw flows from an
explicit seeded ``random.Random`` and every timestamp comes from the obs
layer.  These checks walk the stage/worker-reachable set:

========  ========  ====================================================
RC201     error     unseeded global-RNG use (``random.random()``,
                    ``random.Random()`` with no seed, SystemRandom, ...)
RC202     error     wall-clock / ambient-entropy read outside the
                    sanctioned ``wallclock_modules`` (the run ledger)
RC203     warning   measurement clock (``perf_counter`` etc.) outside
                    ``clock_modules`` — timing belongs to obs/perf
========  ========  ====================================================
"""

from __future__ import annotations

import ast

from repro.analyze.code.graph import dotted_name, match_any
from repro.analyze.diagnostics import ERROR, WARNING, Diagnostic

__all__ = ["check_determinism"]

#: Global-RNG entry points: every one of these consumes or perturbs the
#: process-wide Mersenne state, so results depend on call order.
_GLOBAL_RNG = frozenset({
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.getrandbits", "random.randbytes", "random.gauss",
    "random.betavariate", "random.expovariate", "random.seed",
})

_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow",
})

_MEASURE_CLOCKS = frozenset({
    "time.perf_counter", "time.perf_counter_ns", "time.monotonic",
    "time.monotonic_ns", "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
})


def external_target(index, fn, name):
    """Resolve dotted *name* through the alias chain without requiring the
    head to be an indexed module — ``rnd`` from ``import random as rnd``
    becomes ``random``; unknown heads return the name unchanged."""
    head, _, rest = name.partition(".")
    target = fn.aliases.get(head) or \
        index.module_aliases.get(fn.module, {}).get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if rest else target


def check_determinism(index):
    """Yield ``(module_name, Diagnostic)`` for the RC2xx family."""
    scope = index.stage_reachable() | index.worker_reachable()
    cfg = index.config
    for qual in sorted(scope):
        fn = index.functions.get(qual)
        if fn is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            target = external_target(index, fn, name)
            if target in _GLOBAL_RNG:
                yield fn.module, Diagnostic(
                    code="RC201", severity=ERROR,
                    message=f"{fn.name!r} draws from the process-global "
                            f"RNG ({target}); results depend on call "
                            f"order across the whole run",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="thread a seeded random.Random through",
                )
            elif target == "random.Random" and not node.args \
                    and not node.keywords:
                yield fn.module, Diagnostic(
                    code="RC201", severity=ERROR,
                    message=f"{fn.name!r} constructs random.Random() "
                            f"without a seed",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="derive the seed from the workflow seed",
                )
            elif target == "random.SystemRandom":
                yield fn.module, Diagnostic(
                    code="RC201", severity=ERROR,
                    message=f"{fn.name!r} uses SystemRandom (OS entropy, "
                            f"unreproducible by construction)",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="use a seeded random.Random",
                )
            elif target in _WALLCLOCK and \
                    not match_any(fn.module, cfg.wallclock_modules):
                yield fn.module, Diagnostic(
                    code="RC202", severity=ERROR,
                    message=f"{fn.name!r} reads the wall clock / ambient "
                            f"entropy ({target}) on a proof-reachable "
                            f"path; only {', '.join(cfg.wallclock_modules)} "
                            f"may timestamp",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="record timestamps through the run ledger",
                )
            elif target in _MEASURE_CLOCKS and \
                    not match_any(fn.module, cfg.clock_modules):
                yield fn.module, Diagnostic(
                    code="RC203", severity=WARNING,
                    message=f"{fn.name!r} reads {target} outside the "
                            f"sanctioned clock modules; timing belongs "
                            f"to the spans/ledger layer",
                    line=node.lineno, symbol=fn.qualname,
                    suggestion="wrap the region in repro.obs.spans.span",
                )

"""Redundant- and dead-constraint detection (``ZK3xx``).

This module owns the one implementation of tautology / duplicate /
unsatisfiable-row classification: :func:`scan_redundancy` is consumed both
here (reported as diagnostics — an unsatisfiable circuit becomes a
``ZK303`` *error* instead of a mid-pass exception) and by
:func:`repro.circuit.optimizer.optimize` (which drops the redundant rows).

Dead wires — referenced by no constraint and visible to neither the
verifier nor the IO maps — are reported as ``ZK304``: they inflate the
witness vector, the setup keys and every MSM length until ``optimize()``
compacts them away.
"""

from __future__ import annotations

from repro.analyze.diagnostics import ERROR, INFO, WARNING, Diagnostic

__all__ = [
    "check_redundancy",
    "is_constant_row",
    "row_key",
    "scan_redundancy",
]

#: Classification kinds produced by :func:`scan_redundancy`.
TAUTOLOGY = "tautology"
UNSATISFIABLE = "unsatisfiable"
DUPLICATE = "duplicate"


def is_constant_row(row):
    """True when the row involves only the constant wire (or nothing)."""
    return not row or set(row) == {0}


def row_key(row):
    """Hashable identity of a sparse row (order-independent)."""
    return tuple(sorted(row.items()))


def scan_redundancy(fr, constraints):
    """Classify redundant rows; yields ``(index, kind)`` pairs.

    ``kind`` is :data:`TAUTOLOGY` (constant row, holds for every witness),
    :data:`UNSATISFIABLE` (constant row, holds for none) or
    :data:`DUPLICATE` (structurally identical to an earlier kept row).
    Rows it does not yield are genuine, distinct constraints.
    """
    seen = set()
    for idx, cons in enumerate(constraints):
        if (is_constant_row(cons.a) and is_constant_row(cons.b)
                and is_constant_row(cons.c)):
            lhs = fr.mul(cons.a.get(0, 0), cons.b.get(0, 0))
            if lhs != cons.c.get(0, 0):
                yield idx, UNSATISFIABLE
            else:
                yield idx, TAUTOLOGY
            continue
        key = (row_key(cons.a), row_key(cons.b), row_key(cons.c))
        if key in seen:
            yield idx, DUPLICATE
            continue
        seen.add(key)


def check_redundancy(circuit):
    """Redundancy lints: tautologies, duplicates, unsat rows, dead wires."""
    r1cs = circuit.r1cs
    diags = []
    for idx, kind in scan_redundancy(r1cs.fr, r1cs.constraints):
        if kind == UNSATISFIABLE:
            diags.append(Diagnostic(
                code="ZK303", severity=ERROR, constraint=idx,
                message="constant constraint is violated: the circuit is "
                        "unsatisfiable (no witness exists)",
                suggestion="fix the constants; proving will always fail",
            ))
        elif kind == TAUTOLOGY:
            diags.append(Diagnostic(
                code="ZK301", severity=INFO, constraint=idx,
                message="constant constraint holds for every witness "
                        "(tautology)",
                suggestion="optimize() removes it",
            ))
        else:
            diags.append(Diagnostic(
                code="ZK302", severity=WARNING, constraint=idx,
                message="constraint duplicates an earlier row",
                suggestion="optimize() keeps one copy; duplicates cost a "
                           "QAP domain slot each",
            ))

    live = {0}
    live.update(r1cs.public_wires)
    live.update(circuit.input_wires.values())
    live.update(circuit.output_wires.values())
    for cons in r1cs.constraints:
        live |= cons.wires()
    for w in range(r1cs.n_wires):
        if w not in live:
            diags.append(Diagnostic(
                code="ZK304", severity=INFO, wire=w,
                message=f"wire {r1cs.labels.get(w, w)!r} is dead: no "
                        f"constraint or declaration references it",
                suggestion="optimize() compacts it out of the witness "
                           "vector and keys",
            ))
    return diags

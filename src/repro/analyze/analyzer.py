"""Pass orchestration: run every analysis pass over one compiled circuit.

:func:`analyze` is the single entry point used by
``compile_circuit(check=True)``, the ``repro lint`` CLI and the test
suite.  Passes are registered in :data:`PASSES` and can be selected by
name; suppression and baselines are applied before the report is returned.
"""

from __future__ import annotations

from repro.analyze.constrained import check_constrained
from repro.analyze.cost import check_cost
from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.redundancy import check_redundancy
from repro.analyze.structural import check_structure

__all__ = ["PASSES", "analyze"]

#: Ordered pass registry: name -> callable(circuit) -> list[Diagnostic].
PASSES = {
    "structure": check_structure,
    "constrained": check_constrained,
    "redundancy": check_redundancy,
    "cost": check_cost,
}


def analyze(circuit, *, expected_constraints=None, passes=None,
            suppress=(), baseline=None):
    """Run the static analyzer over a
    :class:`~repro.circuit.compiler.CompiledCircuit`.

    Parameters
    ----------
    circuit:
        The compiled circuit (optimized or not).
    expected_constraints:
        The gadget's expected size; enables the ``ZK402`` blowup lint.
    passes:
        Iterable of pass names from :data:`PASSES` (default: all).
    suppress:
        Diagnostic codes to drop (e.g. ``{"ZK403"}``).
    baseline:
        Set of accepted fingerprints (see
        :func:`repro.analyze.diagnostics.load_baseline`).

    Returns
    -------
    AnalysisReport
        Sorted (severity-first) and filtered diagnostics plus R1CS stats.
    """
    names = list(passes) if passes is not None else list(PASSES)
    unknown = [n for n in names if n not in PASSES]
    if unknown:
        raise ValueError(f"unknown analysis pass(es) {unknown}; "
                         f"choose from {sorted(PASSES)}")
    report = AnalysisReport(circuit.name, stats=circuit.r1cs.stats())
    for name in names:
        if name == "cost":
            report.extend(check_cost(circuit, expected_constraints))
        else:
            report.extend(PASSES[name](circuit))
    report.finalize()
    if suppress or baseline:
        report = report.filtered(suppress=suppress, baseline=baseline)
    return report

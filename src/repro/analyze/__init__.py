"""Constraint-system static analysis (circomspect's role).

An under-constrained circuit is the worst failure mode a zk-SNARK pipeline
has: the proof verifies for witnesses the author never intended, and no
benchmark in the paper's harness would notice.  This package analyzes a
compiled circuit for that bug class and its neighbours:

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
ZK101     error     wire index outside the witness vector
ZK102     error     coefficient not reduced into the scalar field
ZK103     warning   explicit zero coefficient stored in a row
ZK104     warning   degenerate constraint (all rows empty)
ZK105     info      label references an out-of-range wire
ZK201     error     output wire appears in no constraint
ZK202     error     hint-computed wire appears in no constraint
ZK203     warning   input wire appears in no constraint
ZK204     warning   constrained wire never assigned by the program
ZK301     info      constant tautology row
ZK302     warning   duplicate constraint
ZK303     error     unsatisfiable constant row
ZK304     info      dead wire (compaction candidate)
ZK401     warning   dense row degrading sparse-walk cost
ZK402     warning   constraint-count blowup vs. expected gadget size
ZK403     info      QAP power-of-two domain mostly padding
========  ========  ====================================================

Entry points: :func:`analyze` (library),
``compile_circuit(builder, check=True)`` (raises
:class:`CircuitAnalysisError` on error-severity findings), and
``python -m repro lint`` (CLI over every built-in circuit).
"""

from repro.analyze.analyzer import PASSES, analyze
from repro.analyze.diagnostics import (
    AnalysisReport,
    CircuitAnalysisError,
    Diagnostic,
    load_baseline,
    render_reports,
    reports_to_json,
    write_baseline,
)

__all__ = [
    "AnalysisReport",
    "CircuitAnalysisError",
    "Diagnostic",
    "PASSES",
    "analyze",
    "load_baseline",
    "render_reports",
    "reports_to_json",
    "write_baseline",
]

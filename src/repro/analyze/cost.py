"""Cost lints (``ZK4xx``) — constraint-system shape vs. prover cost.

The paper's whole measurement pipeline keys off constraint-system shape:
MSM lengths track the wire count, QAP/NTT work tracks the padded
constraint count, and the sparse matrix walks track nnz.  These lints use
the per-primitive costs from :mod:`repro.perf.costmodel` to put cycle
estimates on shape smells:

- ``ZK401`` — a *dense row*: every nonzero coefficient is one field
  multiply-accumulate in the setup's column walk and the prover's three
  QAP evaluations, so a row with hundreds of entries quietly dominates
  the sparse cost everywhere;
- ``ZK402`` — constraint-count *blowup* against the caller's expected
  gadget size (the circom experience: a refactor doubles the constraint
  count and nobody notices until the prover slows down);
- ``ZK403`` — *domain waste*: QAP evaluation pads the constraint count to
  a power of two, so a circuit just past a boundary pays nearly double
  the NTT work for constraints it does not have.
"""

from __future__ import annotations

from repro.analyze.diagnostics import INFO, WARNING, Diagnostic
from repro.perf.costmodel import cost_of

__all__ = ["check_cost"]

#: A row with more nonzeros than ``max(_DENSE_ABS, n_wires * _DENSE_FRAC)``
#: is reported as dense.  The floor keeps legitimate wide-but-bounded rows
#: (e.g. a 33-entry bit-recomposition) quiet on small circuits.
_DENSE_ABS = 64
_DENSE_FRAC = 0.25

#: Blowup factor over the expected constraint count that trips ZK402 (plus
#: a small absolute slack so tiny gadgets don't flap).
_BLOWUP_FACTOR = 2
_BLOWUP_SLACK = 16

#: Report domain waste only past this domain size and below this fill
#: ratio (just above a power-of-two boundary).
_WASTE_MIN_DOMAIN = 64
_WASTE_MAX_FILL = 0.55


def _next_pow2(n):
    size = 1
    while size < max(n, 1):
        size *= 2
    return size


def check_cost(circuit, expected_constraints=None):
    """Cost lints; *expected_constraints* enables the blowup check."""
    r1cs = circuit.r1cs
    fr = r1cs.fr
    # One sparse entry costs a field mul + add in every column walk.
    mac_cycles = (cost_of(f"bigint_mul_{fr.limbs}").cycles
                  + cost_of(f"bigint_add_{fr.limbs}").cycles)
    diags = []

    threshold = max(_DENSE_ABS, int(r1cs.n_wires * _DENSE_FRAC))
    for j, cons in enumerate(r1cs.constraints):
        nnz = len(cons.a) + len(cons.b) + len(cons.c)
        if nnz > threshold:
            extra = int((nnz - threshold) * mac_cycles)
            diags.append(Diagnostic(
                code="ZK401", severity=WARNING, constraint=j,
                message=f"dense row: {nnz} nonzeros (> {threshold}); "
                        f"~{extra} extra cycles per sparse walk",
                suggestion="split the linear combination across "
                           "intermediate wires to keep rows sparse",
            ))

    n = r1cs.n_constraints
    if expected_constraints is not None:
        limit = expected_constraints * _BLOWUP_FACTOR + _BLOWUP_SLACK
        if n > limit:
            diags.append(Diagnostic(
                code="ZK402", severity=WARNING,
                message=f"constraint blowup: {n} constraints vs. "
                        f"{expected_constraints} expected "
                        f"(> {_BLOWUP_FACTOR}x + {_BLOWUP_SLACK})",
                suggestion="audit recent gadget changes; prover NTT/MSM "
                           "work scales with the padded constraint count",
            ))

    domain = _next_pow2(n)
    if domain >= _WASTE_MIN_DOMAIN and n <= domain * _WASTE_MAX_FILL:
        # Three forward NTTs over the wasted half of the domain.
        butterflies = 3 * (domain - domain // 2) * max(domain.bit_length() - 1, 1)
        wasted = int(butterflies * cost_of("ntt_butterfly").cycles)
        diags.append(Diagnostic(
            code="ZK403", severity=INFO,
            message=f"domain waste: {n} constraints pad to a {domain}-point "
                    f"QAP domain ({n / domain:.0%} full; ~{wasted} NTT "
                    f"cycles spent on padding)",
            suggestion=f"{n - domain // 2} fewer constraints would halve "
                       f"the NTT domain",
        ))
    return diags

"""Constraint-coverage checks (``ZK2xx``) — the circom soundness bug class.

A hint (circom's ``<--``) computes a wire during witness generation without
adding a constraint; the author must pin the value down separately.  Forget
that, and the proof verifies for *any* value of the wire: the classic
under-constrained-circuit vulnerability (the bug class circomspect and
similar auditing tools exist for).

The pass runs a determined-wire propagation over the compiled witness
program — which wires the prover computes, and how — and cross-checks it
against *constraint coverage* — which wires the proof actually binds:

- an **output** wire outside every constraint means the public result is
  never checked (``ZK201``, error);
- a **hint-computed** wire outside every constraint is prover-chosen and
  unbound (``ZK202``, error);
- an **input** wire outside every constraint never influences the proof
  (``ZK203``, warning);
- a wire *referenced* by constraints but never assigned by the program
  stays zero in every honest witness (``ZK204``, warning — the constraint
  is either vacuous or unsatisfiable at proving time).
"""

from __future__ import annotations

from repro.analyze.diagnostics import ERROR, WARNING, Diagnostic

__all__ = ["check_constrained", "constraint_coverage", "determined_wires"]


def constraint_coverage(r1cs):
    """Every wire index referenced by at least one constraint row."""
    covered = set()
    for cons in r1cs.constraints:
        covered |= cons.wires()
    return covered


def determined_wires(circuit):
    """Propagate determinedness over the witness program.

    Returns ``(determined, hint_outputs)``: the set of wires an honest
    prover assigns (constant, inputs, and every program-step output), and
    the subset assigned by hint steps (prover-chosen, not implied by a
    gate's semantics).
    """
    determined = {0}
    determined.update(circuit.input_wires.values())
    hint_outputs = set()
    for step in circuit.program:
        if step[0] == "mul":
            determined.add(step[3])
        else:
            outs = step[3]
            hint_outputs.update(outs)
            determined.update(outs)
    return determined, hint_outputs


def check_constrained(circuit):
    """Cross-check determined wires against constraint coverage."""
    r1cs = circuit.r1cs
    covered = constraint_coverage(r1cs)
    determined, hint_outputs = determined_wires(circuit)
    label = r1cs.labels.get
    diags = []

    output_wires = set(circuit.output_wires.values())
    for name, w in sorted(circuit.output_wires.items()):
        if w not in covered:
            diags.append(Diagnostic(
                code="ZK201", severity=ERROR, wire=w,
                message=f"output {name!r} appears in no constraint: the "
                        f"proof verifies for any claimed value",
                suggestion="constrain the output (make_wire/assert_equal "
                           "add the binding gate)",
            ))

    for w in sorted(hint_outputs - covered - output_wires):
        diags.append(Diagnostic(
            code="ZK202", severity=ERROR, wire=w,
            message=f"hint-computed wire {label(w, w)!r} appears in no "
                    f"constraint: the prover may assign it freely",
            suggestion="pin hint outputs down with constraints "
                       "(e.g. assert_mul), as with circom's <-- operator",
        ))

    for name, w in sorted(circuit.input_wires.items()):
        if w not in covered:
            diags.append(Diagnostic(
                code="ZK203", severity=WARNING, wire=w,
                message=f"input {name!r} appears in no constraint: its "
                        f"value never influences the proof",
                suggestion="remove the input or constrain it",
            ))

    for w in sorted(covered - determined):
        diags.append(Diagnostic(
            code="ZK204", severity=WARNING, wire=w,
            message=f"wire {label(w, w)!r} is constrained but never "
                    f"assigned by the witness program (stays 0)",
            suggestion="compute the wire (mul/hint) or drop the "
                       "constraints referencing it",
        ))
    return diags

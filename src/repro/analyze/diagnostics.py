"""Diagnostics framework for the constraint-system static analyzer.

Every analysis pass emits :class:`Diagnostic` records — severity, a stable
``ZKxxx`` code, a location (wire and/or constraint index), a human message
and a suggested fix — and the analyzer collects them into an
:class:`AnalysisReport` with text and JSON renderers.

Suppression works at two levels, mirroring real linters (circomspect,
ruff):

- **code suppression** — drop every diagnostic with a given code
  (``analyze(..., suppress={"ZK401"})`` or ``repro lint --suppress``);
- **baselines** — a JSON file of diagnostic *fingerprints* recorded from a
  known state; previously-seen findings are filtered out so only new ones
  fail CI (``repro lint --write-baseline`` / ``--baseline``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "AnalysisReport",
    "CircuitAnalysisError",
    "Diagnostic",
    "ERROR",
    "INFO",
    "WARNING",
    "load_baseline",
    "render_reports",
    "reports_to_json",
    "write_baseline",
]

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


class CircuitAnalysisError(ValueError):
    """Raised by ``compile_circuit(..., check=True)`` when the analyzer
    finds error-severity diagnostics.  Carries the offending report."""

    def __init__(self, report):
        self.report = report
        errors = report.errors()
        lines = [f"{len(errors)} error(s) in circuit {report.circuit!r}:"]
        lines += [f"  {d.format()}" for d in errors]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``code`` is stable across releases (``ZK1xx`` structural, ``ZK2xx``
    constraint coverage, ``ZK3xx`` redundancy, ``ZK4xx`` cost for the
    circuit analyzer; ``RC1xx``–``RC5xx`` for the codebase analyzer);
    tools may match on it.  ``wire`` / ``constraint`` locate circuit
    findings, ``line`` / ``symbol`` locate source findings;
    ``suggestion`` says how to fix or silence it.
    """

    code: str
    severity: str
    message: str
    wire: int | None = None
    constraint: int | None = None
    suggestion: str | None = None
    line: int | None = None
    symbol: str | None = None

    def location(self):
        """Human-readable location fragment (may be empty)."""
        parts = []
        if self.constraint is not None:
            parts.append(f"constraint {self.constraint}")
        if self.wire is not None:
            parts.append(f"wire {self.wire}")
        if self.line is not None:
            parts.append(f"line {self.line}")
        return ", ".join(parts)

    def format(self):
        """One-line rendering: ``ZK201 error [wire 5]: message``."""
        loc = self.location()
        loc = f" [{loc}]" if loc else ""
        text = f"{self.code} {self.severity}{loc}: {self.message}"
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text

    def fingerprint(self, circuit_name):
        """Stable identity used by the baseline mechanism.

        Source diagnostics (those carrying a ``symbol``) fingerprint on
        the symbol, not the line, so unrelated edits shifting line
        numbers do not invalidate a baseline."""
        if self.symbol is not None:
            return f"{circuit_name}:{self.code}:{self.symbol}"
        return (
            f"{circuit_name}:{self.code}"
            f":c{self.constraint if self.constraint is not None else '-'}"
            f":w{self.wire if self.wire is not None else '-'}"
        )

    def to_dict(self):
        d = {"code": self.code, "severity": self.severity, "message": self.message}
        if self.wire is not None:
            d["wire"] = self.wire
        if self.constraint is not None:
            d["constraint"] = self.constraint
        if self.line is not None:
            d["line"] = self.line
        if self.symbol is not None:
            d["symbol"] = self.symbol
        if self.suggestion:
            d["suggestion"] = self.suggestion
        return d

    def sort_key(self):
        return (
            _SEVERITY_RANK.get(self.severity, 9),
            self.code,
            self.constraint if self.constraint is not None else -1,
            self.wire if self.wire is not None else -1,
            self.line if self.line is not None else -1,
        )


@dataclass
class AnalysisReport:
    """All diagnostics for one circuit, plus its shape stats."""

    circuit: str
    stats: dict = field(default_factory=dict)
    diagnostics: list = field(default_factory=list)

    def extend(self, diags):
        self.diagnostics.extend(diags)

    def finalize(self):
        """Sort diagnostics by severity, then code, then location."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    # -- filtering ---------------------------------------------------------------

    def filtered(self, suppress=(), baseline=None):
        """A copy with suppressed codes and baselined findings removed."""
        suppress = set(suppress or ())
        baseline = set(baseline or ())
        kept = [
            d for d in self.diagnostics
            if d.code not in suppress
            and d.fingerprint(self.circuit) not in baseline
        ]
        return AnalysisReport(self.circuit, dict(self.stats), kept)

    # -- queries -----------------------------------------------------------------

    def by_severity(self, severity):
        return [d for d in self.diagnostics if d.severity == severity]

    def errors(self):
        return self.by_severity(ERROR)

    def warnings(self):
        return self.by_severity(WARNING)

    @property
    def has_errors(self):
        return bool(self.errors())

    def codes(self):
        """Set of diagnostic codes present in the report."""
        return {d.code for d in self.diagnostics}

    # -- renderers ---------------------------------------------------------------

    def render(self):
        """Multi-line text rendering, clean units included."""
        if "n_constraints" in self.stats or "n_wires" in self.stats \
                or not self.stats:
            head = (
                f"{self.circuit}: {self.stats.get('n_constraints', '?')} constraints, "
                f"{self.stats.get('n_wires', '?')} wires"
            )
        else:
            # Non-circuit units (source modules) carry their own stats;
            # render whatever numeric shape facts they provide.
            parts = [f"{v} {k}" for k, v in self.stats.items()
                     if isinstance(v, (int, float))]
            head = f"{self.circuit}: {', '.join(parts)}" if parts else self.circuit
        if not self.diagnostics:
            return f"{head} -- clean"
        lines = [f"{head} -- {self.summary()}"]
        lines += [f"  {d.format()}" for d in self.diagnostics]
        return "\n".join(lines)

    def summary(self):
        n_err = len(self.errors())
        n_warn = len(self.warnings())
        n_info = len(self.diagnostics) - n_err - n_warn
        return f"{n_err} error(s), {n_warn} warning(s), {n_info} info"

    def to_dict(self):
        return {
            "circuit": self.circuit,
            "stats": dict(self.stats),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def render_reports(reports):
    """Text rendering of several reports plus a totals line (delegates
    to the shared renderer in :mod:`repro.obs.format`)."""
    from repro.obs.format import render_diagnostic_reports

    return render_diagnostic_reports(reports, noun="circuit")


def reports_to_json(reports):
    """JSON rendering (the ``repro lint --json`` payload; shared with
    ``repro codelint`` via :mod:`repro.obs.format`)."""
    from repro.obs.format import diagnostic_reports_to_json

    return diagnostic_reports_to_json(reports)


# -- baselines -------------------------------------------------------------------


def load_baseline(path):
    """Read a baseline file into a set of fingerprints."""
    with open(path) as f:
        data = json.load(f)
    return set(data.get("fingerprints", []))


def write_baseline(path, reports):
    """Record every current finding as accepted; returns the count."""
    fingerprints = sorted(
        d.fingerprint(r.circuit) for r in reports for d in r.diagnostics
    )
    with open(path, "w") as f:
        json.dump({"fingerprints": fingerprints}, f, indent=2)
        f.write("\n")
    return len(fingerprints)

"""Structural soundness checks (``ZK1xx``).

These catch malformed constraint systems — the bugs a hand-built or
programmatically-mangled R1CS exhibits before any semantic question can
even be asked: wire indices outside the witness vector, coefficients not
reduced into the field, no-op rows, and stale label maps.
"""

from __future__ import annotations

from repro.analyze.diagnostics import ERROR, INFO, WARNING, Diagnostic

__all__ = ["check_structure"]


def _row_diags(row, side, j, n_wires, modulus):
    for wire, coeff in row.items():
        if not isinstance(wire, int) or not 0 <= wire < n_wires:
            yield Diagnostic(
                code="ZK101", severity=ERROR, constraint=j,
                wire=wire if isinstance(wire, int) else None,
                message=f"{side}-side references wire {wire!r} outside "
                        f"[0, {n_wires})",
                suggestion="the witness vector cannot index this wire; "
                           "rebuild the circuit through CircuitBuilder",
            )
        if not isinstance(coeff, int) or not 0 <= coeff < modulus:
            yield Diagnostic(
                code="ZK102", severity=ERROR, constraint=j, wire=wire,
                message=f"{side}-side coefficient {coeff!r} is not reduced "
                        f"into the scalar field",
                suggestion="normalize coefficients mod p at construction "
                           "(compile_circuit does this)",
            )
        elif coeff == 0:
            yield Diagnostic(
                code="ZK103", severity=WARNING, constraint=j, wire=wire,
                message=f"{side}-side stores an explicit zero coefficient",
                suggestion="drop zero entries; they bloat nnz counts and "
                           "every sparse walk downstream",
            )


def check_structure(circuit):
    """Structural lints over the R1CS, labels and witness program."""
    r1cs = circuit.r1cs
    n = r1cs.n_wires
    p = r1cs.fr.modulus
    diags = []

    for j, cons in enumerate(r1cs.constraints):
        for side, row in (("A", cons.a), ("B", cons.b), ("C", cons.c)):
            diags.extend(_row_diags(row, side, j, n, p))
        if not cons.a and not cons.b and not cons.c:
            diags.append(Diagnostic(
                code="ZK104", severity=WARNING, constraint=j,
                message="degenerate constraint: all three rows are empty "
                        "(checks 0 * 0 == 0)",
                suggestion="remove the row; the prover pays a QAP domain "
                           "slot for a vacuous check",
            ))

    for wire, label in r1cs.labels.items():
        if not 0 <= wire < n:
            diags.append(Diagnostic(
                code="ZK105", severity=INFO, wire=wire,
                message=f"label {label!r} references wire {wire} outside "
                        f"[0, {n})",
                suggestion="stale label map; drop entries when compacting "
                           "wires",
            ))

    # The witness program writes and reads wires too: an out-of-range index
    # here crashes witness generation at run time rather than analysis time.
    for k, step in enumerate(circuit.program):
        if step[0] == "mul":
            _, fa, fb, out = step
            wires = [w for w, _ in fa[0]] + [w for w, _ in fb[0]] + [out]
        else:
            _, _fn, frozen_ins, outs = step
            wires = [w for fz in frozen_ins for w, _ in fz[0]] + list(outs)
        for w in wires:
            if not 0 <= w < n:
                diags.append(Diagnostic(
                    code="ZK101", severity=ERROR, wire=w,
                    message=f"witness program step {k} references wire {w} "
                            f"outside [0, {n})",
                    suggestion="the witness stage will crash; recompile "
                               "instead of editing programs by hand",
                ))
    return diags

"""Retry, backoff and deadline machinery for stage execution.

:class:`RetryPolicy` is exponential backoff with **deterministic** seeded
jitter — two runs with the same seed sleep the same schedule, keeping
chaos runs reproducible.  :class:`Deadline` is a cooperative per-stage
time budget: the hot kernels (MSM window loop, NTT transforms) poll
``retry.DEADLINE`` between parallel passes, so a stage that blows its
budget raises :class:`~repro.resilience.errors.StageTimeout` from inside
the work rather than being silently awaited forever.

:class:`ResiliencePolicy` binds the two and is what
``Workflow.run_stage`` consults through the process-global ``CURRENT``
slot (installed with :func:`resilient`, the same ``is None``-guarded
idiom as tracing/metrics): when no policy is active the workflow behaves
exactly as before; when one is, every stage runs under
:meth:`ResiliencePolicy.execute_stage` — fault-site check, deadline
scope, retry loop, and a terminal
:class:`~repro.resilience.errors.StageError` wrap.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager

from repro.obs import metrics
from repro.resilience import faults
from repro.resilience.errors import StageError, StageTimeout, is_retryable

__all__ = [
    "Deadline",
    "ResiliencePolicy",
    "RetryPolicy",
    "deadline_scope",
    "resilient",
    "with_retry",
]

#: The process-global policy slot consulted by ``Workflow.run_stage``.
CURRENT = None

#: The active cooperative deadline (or ``None``); polled by hot kernels as
#: ``if retry.DEADLINE is not None: retry.DEADLINE.check()``.
DEADLINE = None


class RetryPolicy:
    """Exponential backoff with seeded full jitter.

    ``delay(attempt)`` for the 1-based failed attempt is
    ``min(max_delay, base_delay * 2**(attempt-1)) * U`` with ``U`` drawn
    from ``[1 - jitter, 1]`` by a :class:`random.Random` seeded at
    construction — deterministic, yet desynchronized across stages.
    """

    def __init__(self, max_attempts=3, base_delay=0.01, max_delay=1.0,
                 jitter=0.5, seed=0, sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(f"retry:{seed}")
        self._sleep = sleep

    def delay(self, attempt):
        raw = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return raw * (1.0 - self.jitter * self._rng.random())

    @property
    def sleeps(self):
        """False when built with ``sleep=None`` — callers that wait
        asynchronously (the serving layer) skip the wait entirely then,
        mirroring what :meth:`backoff` does for synchronous callers."""
        return self._sleep is not None

    def backoff(self, attempt):
        """Sleep the computed delay (no-op when constructed with
        ``sleep=None``, as the test suite and chaos CLI do)."""
        d = self.delay(attempt)
        if self._sleep is not None and d > 0:
            self._sleep(d)
        return d


#: Policy used when ``with_retry`` is called bare.
DEFAULT_POLICY = RetryPolicy()


def with_retry(fn, policy=None, label="call"):
    """Run ``fn()`` under *policy*, re-attempting retryable taxonomy
    faults; the last failure propagates unchanged."""
    policy = policy or DEFAULT_POLICY
    m = metrics.CURRENT
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except Exception as exc:
            if not is_retryable(exc) or attempt == policy.max_attempts:
                if m is not None:
                    m.inc("repro_resilience_giveups_total")
                raise
            if m is not None:
                m.inc("repro_resilience_retries_total")
            policy.backoff(attempt)


class Deadline:
    """Cooperative time budget: ``check()`` raises ``StageTimeout`` once
    ``seconds`` have elapsed since construction."""

    __slots__ = ("stage", "seconds", "started")

    def __init__(self, seconds, stage=None, clock=time.monotonic):
        self.stage = stage
        self.seconds = seconds
        self.started = clock()

    def elapsed(self, clock=time.monotonic):
        return clock() - self.started

    def expired(self):
        return self.elapsed() > self.seconds

    def check(self):
        elapsed = self.elapsed()
        if elapsed > self.seconds:
            m = metrics.CURRENT
            if m is not None:
                m.inc("repro_resilience_deadline_expirations_total")
            raise StageTimeout(
                f"stage {self.stage!r} exceeded its {self.seconds:.3f}s deadline "
                f"({elapsed:.3f}s elapsed)",
                stage=self.stage, deadline_s=self.seconds, elapsed_s=elapsed,
            )


@contextmanager
def deadline_scope(seconds, stage=None):
    """Install a :class:`Deadline` in the ``DEADLINE`` slot (nested scopes
    keep the tighter—outer—deadline visible again on exit)."""
    global DEADLINE
    previous = DEADLINE
    DEADLINE = Deadline(seconds, stage=stage) if seconds is not None else previous
    try:
        yield DEADLINE
    finally:
        DEADLINE = previous


class ResiliencePolicy:
    """What the workflow consults per stage: a retry policy plus optional
    per-stage deadline seconds (``{stage: seconds}``; ``None`` key absent
    means no deadline for that stage)."""

    def __init__(self, retry=None, deadlines=None):
        self.retry = retry or RetryPolicy()
        self.deadlines = dict(deadlines or {})

    def execute_stage(self, stage, impl):
        """Run one stage body under fault check + deadline + retry; a
        terminal failure raises :class:`StageError` with the underlying
        taxonomy fault chained."""
        last = None
        attempts = 0
        m = metrics.CURRENT
        for attempt in range(1, self.retry.max_attempts + 1):
            attempts = attempt
            try:
                with deadline_scope(self.deadlines.get(stage), stage=stage) as dl:
                    if faults.CURRENT is not None:
                        faults.CURRENT.check(f"stage:{stage}")
                    artifact = impl()
                    # Post-hoc enforcement for stages whose body never
                    # reaches a cooperative poll point.
                    if dl is not None and dl.stage == stage:
                        dl.check()
                    return artifact
            except Exception as exc:
                last = exc
                if not is_retryable(exc):
                    break
                if attempt < self.retry.max_attempts:
                    if m is not None:
                        m.inc("repro_resilience_retries_total")
                        m.inc(f"repro_resilience_stage_{stage}_retries_total")
                    self.retry.backoff(attempt)
        if m is not None:
            m.inc("repro_resilience_giveups_total")
        raise StageError(stage, last, attempts=attempts) from last


@contextmanager
def resilient(policy=None, **kwargs):
    """Install a :class:`ResiliencePolicy` (built from *kwargs* when not
    given) as the process-global stage-execution policy."""
    global CURRENT
    if CURRENT is not None:
        raise RuntimeError("a resilience policy is already active")
    CURRENT = policy if policy is not None else ResiliencePolicy(**kwargs)
    try:
        yield CURRENT
    finally:
        CURRENT = None

"""Typed error taxonomy of the resilience layer.

Every failure mode the pipeline is expected to survive — or at least to
report crisply — has one class here, so callers can build policy on
``except`` clauses instead of string-matching tracebacks:

``TransientFault``
    Momentary, environment-shaped failures (a flaky kernel pass, an I/O
    hiccup).  Retryable by definition.
``StageTimeout``
    A stage exceeded its deadline (:class:`repro.resilience.retry.Deadline`).
    Retryable — the next attempt may land on a quieter machine.
``ArtifactCorruption``
    A serialized artifact (proof/vk/pk blob, cache entry, checkpoint cell)
    failed validation — truncated, oversized, checksum mismatch, or a point
    off its curve/subgroup.  Retryable at the *stage* level (recomputing
    regenerates the artifact) but never silently accepted.  Subclasses
    ``ValueError`` so pre-taxonomy callers that caught ``ValueError`` from
    deserialization keep working.
``ResourceExhausted``
    Memory/space pressure.  Not retried as-is; degradation policies
    (:mod:`repro.resilience.degrade`) downshift the work instead.
``AdmissionError``
    The serving layer (:mod:`repro.serve`) refused to accept a request —
    queue full, in-flight cap reached, or the service is draining.  Load
    shedding is a *deliberate* answer, not a fault to mask: never
    retryable by the service (the client may re-submit later, which is a
    policy decision above this taxonomy).
``WorkerCrash``
    An *untyped* exception escaped inside a parallel worker process
    (:mod:`repro.parallel`).  Taxonomy errors cross the process boundary
    as themselves; everything else is wrapped here so the parent never
    sees a pickled traceback — only a one-line typed report naming the
    original exception.
``StageOrderError``
    A protocol step ran before its prerequisite (``proving`` before
    ``witness``, a sigma ``respond()`` before ``commit()``).  Programmer
    error, never retried.  Subclasses ``RuntimeError`` so pre-taxonomy
    callers that caught the old untyped guards keep working.
``PoolStateError``
    The worker-pool lifecycle was violated — a map on a closed pool, or
    activating a second pool under an active one.  Programmer error,
    never retried.  Subclasses ``RuntimeError`` for the same reason.
``StageError``
    The terminal wrapper: a stage failed after every retry/degrade avenue,
    carrying the stage name, attempt count, and the underlying typed fault
    as ``__cause__``/:attr:`fault`.

``classify`` names the taxonomy class of any exception (for metrics and
chaos reports); ``is_retryable`` is the single source of truth for what the
retry loop may re-attempt.
"""

from __future__ import annotations

__all__ = [
    "AdmissionError",
    "ArtifactCorruption",
    "PoolStateError",
    "ReproError",
    "ResourceExhausted",
    "StageError",
    "StageOrderError",
    "StageTimeout",
    "TransientFault",
    "WorkerCrash",
    "classify",
    "is_retryable",
]


class ReproError(Exception):
    """Base of the taxonomy.  ``code`` is the stable machine-readable tag
    used in CLI output (``error[<code>]: ...``) and metrics labels."""

    code = "error"

    def one_line(self):
        """Single-line rendering for CLI error paths (never a traceback)."""
        text = " ".join(str(self).split())
        return f"error[{self.code}]: {text}"


class TransientFault(ReproError):
    code = "transient"


class StageTimeout(ReproError):
    code = "timeout"

    def __init__(self, message, stage=None, deadline_s=None, elapsed_s=None):
        super().__init__(message)
        self.stage = stage
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class ArtifactCorruption(ReproError, ValueError):
    code = "corrupt"

    def __init__(self, message, artifact=None, expected=None, actual=None):
        if expected is not None or actual is not None:
            message = f"{message} (expected {expected}, actual {actual})"
        super().__init__(message)
        self.artifact = artifact
        self.expected = expected
        self.actual = actual


class ResourceExhausted(ReproError):
    code = "resources"


class AdmissionError(ReproError):
    """The serving layer shed a request instead of queueing it.

    Raised (or reported as ``error[admission]``) when the bounded job
    queue or the in-flight cap of :class:`repro.serve.ProvingService` is
    full, or the service is draining.  Deliberately **not** in
    :data:`RETRYABLE`: shedding exists to protect the slow CPU-bound
    core, and transparently re-queueing would undo it.
    """

    code = "admission"


class StageOrderError(ReproError, RuntimeError):
    """A protocol step ran before its prerequisite artifact existed."""

    code = "order"


class PoolStateError(ReproError, RuntimeError):
    """The worker-pool lifecycle contract was violated."""

    code = "pool"


class WorkerCrash(ReproError):
    """An untyped exception escaped inside a parallel worker process.

    Typed taxonomy errors are re-raised in the parent as their own class;
    anything else becomes a ``WorkerCrash`` naming the original exception
    type so the parent reports one typed line, never a pickled traceback.
    """

    code = "worker"

    def __init__(self, message, task=None, exc_type=None):
        super().__init__(message)
        self.task = task
        self.exc_type = exc_type


class StageError(ReproError):
    """A pipeline stage failed for good.

    Raised by the retry wrapper after the last attempt; :attr:`fault` is
    the underlying taxonomy error (also chained as ``__cause__``) so chaos
    reports and tests can assert on the original failure class.
    """

    code = "stage"

    def __init__(self, stage, fault, attempts=1):
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt(s): "
            f"[{classify(fault)}] {fault}"
        )
        self.stage = stage
        self.fault = fault
        self.attempts = attempts


#: Fault classes the retry loop may re-attempt.  ``ResourceExhausted`` is
#: deliberately absent: repeating the same allocation pattern fails the
#: same way — degradation (smaller sampling, naive kernels) is the answer.
RETRYABLE = (TransientFault, StageTimeout, ArtifactCorruption)


def is_retryable(exc):
    """True iff the retry loop is allowed to re-attempt after *exc*."""
    return isinstance(exc, RETRYABLE)


def classify(exc):
    """Stable taxonomy tag for *exc* (``"untyped"`` for foreign errors)."""
    if isinstance(exc, ReproError):
        return exc.code
    return "untyped"

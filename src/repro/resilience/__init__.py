"""Resilience layer: survive faults instead of losing the run.

The paper profiles the five-stage pipeline as a long-running batch
workload, and the north star is a proving/verification *service*; both
die ugly if one exception anywhere loses hours of sweep work.  This
package makes failure a modeled, observable event:

:mod:`repro.resilience.errors`
    The typed taxonomy — ``TransientFault``, ``StageTimeout``,
    ``ArtifactCorruption``, ``ResourceExhausted``, terminal
    ``StageError`` — and the ``is_retryable`` policy line.
:mod:`repro.resilience.faults`
    Deterministic seeded fault injection behind a ``CURRENT is None``
    guard, with sites at every stage boundary and in the MSM/NTT/
    serialize hot paths.
:mod:`repro.resilience.retry`
    Exponential backoff with seeded jitter, cooperative per-stage
    deadlines, and the :class:`~repro.resilience.retry.ResiliencePolicy`
    that ``Workflow.run_stage`` consults.
:mod:`repro.resilience.checkpoint`
    Checksummed pickle payloads and per-cell sweep checkpoints under
    ``results/checkpoints/`` (``python -m repro sweep --resume``).
:mod:`repro.resilience.degrade`
    Graceful degradation: Pippenger→naive MSM fallback, batch-verify
    bisection to the exact bad proof indices, and the harness memory
    guard that coarsens ``mem_sample`` under pressure.
:mod:`repro.resilience.chaos`
    The seeded chaos driver behind ``python -m repro chaos`` (imported
    explicitly — it pulls in the whole pipeline).

Every recovery action increments a ``repro_resilience_*`` counter in the
:mod:`repro.obs.metrics` registry, so retries, fallbacks, evictions and
give-ups land in the run ledger next to the kernel counters.  See
``docs/ROBUSTNESS.md``.
"""

from repro.resilience.checkpoint import (
    SweepCheckpoint,
    read_checksummed,
    write_checksummed,
)
from repro.resilience.degrade import (
    batch_verify_bisect,
    resilient_msm,
    run_with_memory_guard,
)
from repro.resilience.errors import (
    ArtifactCorruption,
    PoolStateError,
    ReproError,
    ResourceExhausted,
    StageError,
    StageOrderError,
    StageTimeout,
    TransientFault,
    classify,
    is_retryable,
)
from repro.resilience.faults import FaultInjector, FaultSpec, injecting, schedule
from repro.resilience.retry import (
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
    resilient,
    with_retry,
)

__all__ = [
    "ArtifactCorruption",
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "PoolStateError",
    "ReproError",
    "ResiliencePolicy",
    "ResourceExhausted",
    "RetryPolicy",
    "StageError",
    "StageOrderError",
    "StageTimeout",
    "SweepCheckpoint",
    "TransientFault",
    "batch_verify_bisect",
    "classify",
    "injecting",
    "is_retryable",
    "read_checksummed",
    "resilient",
    "resilient_msm",
    "run_with_memory_guard",
    "schedule",
    "with_retry",
    "write_checksummed",
]

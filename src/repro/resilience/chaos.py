"""Seeded chaos driver: run the pipeline under a fault schedule.

``run_chaos`` derives a deterministic fault plan from a seed, installs
the injector, a fresh metrics registry and a retry/deadline policy, runs
the full five-stage workflow plus a proof/vk serialization round-trip,
and reduces what happened to a :class:`ChaosReport`:

- ``recovered`` — every injected fault was absorbed (retried or
  degraded; the counters say which) and the final proof verified;
- ``stage-failed`` / ``typed-failure`` — the pipeline lost, but with the
  matching taxonomy error, which is the contract;
- ``untyped-failure`` — a bare exception escaped: the one outcome the
  chaos suite treats as a bug.

Exposed as ``python -m repro chaos --seed 0 --faults 4``; the heavy
pipeline imports happen inside :func:`run_chaos` so importing the
resilience package stays cheap.
"""

from __future__ import annotations

import json

from repro.obs import metrics
from repro.resilience import faults
from repro.resilience.errors import ReproError, StageError
from repro.resilience.retry import (
    ResiliencePolicy,
    RetryPolicy,
    resilient,
    with_retry,
)

__all__ = ["ChaosReport", "run_chaos"]

#: Statuses that honor the chaos contract (typed or recovered).
ACCEPTABLE = ("recovered", "stage-failed", "typed-failure")


class ChaosReport:
    """Outcome of one chaos run: plan, status, and recovery counters."""

    def __init__(self, seed, curve, size, workload, status, error, plan,
                 counters):
        self.seed = seed
        self.curve = curve
        self.size = size
        self.workload = workload
        self.status = status
        self.error = error
        self.plan = plan
        self.counters = counters

    @property
    def recovered(self):
        return self.status == "recovered"

    @property
    def acceptable(self):
        """True iff the run honored the never-a-bare-traceback contract."""
        return self.status in ACCEPTABLE

    def to_dict(self):
        return {
            "seed": self.seed,
            "curve": self.curve,
            "size": self.size,
            "workload": self.workload,
            "status": self.status,
            "error": self.error,
            "plan": [spec.to_dict() for spec in self.plan],
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self):
        lines = [
            f"chaos run: seed={self.seed} faults={len(self.plan)} "
            f"curve={self.curve} size={self.size} workload={self.workload}",
            "plan:",
        ]
        for spec in self.plan:
            state = "fired  " if spec.fired else "pending"
            lines.append(f"  [{state}] {spec.kind:9s} at {spec.site} "
                         f"(hit {spec.hit})")
        lines.append(f"outcome: {self.status}"
                     + (f" — {self.error}" if self.error else ""))
        if self.counters:
            lines.append("recovery counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name} {value}")
        return "\n".join(lines)


def run_chaos(seed=0, n_faults=3, curve="bn128", size=32,
              workload="exponentiate", max_attempts=3, sites=None,
              plan=None, workers=None):
    """Run one seeded chaos experiment; returns a :class:`ChaosReport`.

    *plan* overrides the schedule derived from *seed* (used by the chaos
    test suite to pin one fault to one site).  *workers* > 1 runs the
    pipeline under the parallel backend — faults then fire *inside*
    worker processes and must still come back typed (the interop the
    parallel test suite pins down)."""
    from repro.curves import get_curve
    from repro.groth16.serialize import (
        proof_from_bytes,
        proof_to_bytes,
        vk_from_bytes,
        vk_to_bytes,
    )
    from repro.harness.circuits import build_workload
    from repro.workflow import Workflow

    if plan is None:
        plan = faults.schedule(seed, n_faults, sites=sites or faults.ALL_SITES)
    curve_obj = get_curve(curve)
    builder, inputs = build_workload(workload, curve_obj, size)
    wf = Workflow(curve_obj, builder, inputs, seed=seed, workers=workers)
    # sleep=None: chaos replays the backoff *schedule* without paying the
    # wall-clock for it, keeping CI smoke runs fast and deterministic.
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=max_attempts, seed=seed, sleep=None))
    registry = metrics.MetricsRegistry()

    status, error = "recovered", None
    with metrics.collecting(registry), faults.injecting(plan), \
            resilient(policy):
        try:
            wf.run_all()

            def _roundtrip():
                proof_from_bytes(proof_to_bytes(wf.proof))
                vk_from_bytes(vk_to_bytes(wf.vk))

            with_retry(_roundtrip, policy.retry, label="serialize-roundtrip")
            if wf.accepted is not True:
                status, error = "rejected", "pipeline completed but proof rejected"
        except StageError as exc:
            status, error = "stage-failed", exc.one_line()
        except ReproError as exc:
            status, error = "typed-failure", exc.one_line()
        except Exception as exc:  # noqa: BLE001 — the contract violation path
            status, error = "untyped-failure", f"{type(exc).__name__}: {exc}"
        finally:
            wf.close()

    counters = {
        name: value
        for name, value in registry.snapshot()["counters"].items()
        if name.startswith("repro_resilience_")
    }
    return ChaosReport(seed=seed, curve=curve, size=size, workload=workload,
                       status=status, error=error, plan=plan,
                       counters=counters)

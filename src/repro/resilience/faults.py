"""Deterministic, seeded fault injection.

The chaos machinery of the resilience layer: a :class:`FaultInjector`
installed in the process-global ``CURRENT`` slot (the same idiom as
``trace.CURRENT`` / ``metrics.CURRENT``) arms a *plan* of
:class:`FaultSpec` entries, and instrumented **sites** — every stage
boundary plus the MSM/NTT/serialize hot paths — ask it whether to fail:

    if faults.CURRENT is not None:
        faults.CURRENT.check("msm:pippenger")

A disabled site costs one module-attribute load and an ``is None`` test,
so production runs pay nothing.  Each spec names a site, a fault kind from
the :mod:`repro.resilience.errors` taxonomy, and the 1-based invocation of
that site at which it fires; it fires **once** and is then consumed, which
is what makes retry-based recovery observable.  Plans are either authored
explicitly or derived from a seed with :func:`schedule`, so a chaos run is
reproducible end to end (``python -m repro chaos --seed 0 --faults 4``).
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from repro.obs import metrics
from repro.resilience.errors import (
    ArtifactCorruption,
    ResourceExhausted,
    StageTimeout,
    TransientFault,
)

__all__ = [
    "ALL_SITES",
    "FaultInjector",
    "FaultSpec",
    "KINDS",
    "PIPELINE_SITES",
    "injecting",
    "make_fault",
    "schedule",
]

#: The process-global injector slot; ``None`` means injection is off.
CURRENT = None

#: Fault kind -> taxonomy class raised at the site.
KINDS = {
    "transient": TransientFault,
    "timeout": StageTimeout,
    "corrupt": ArtifactCorruption,
    "oom": ResourceExhausted,
}

#: Sites exercised by one five-stage pipeline run (what :func:`schedule`
#: draws from by default — a fault planned here is guaranteed to trigger).
PIPELINE_SITES = (
    "stage:compile",
    "stage:setup",
    "stage:witness",
    "stage:proving",
    "stage:verifying",
    "msm:pippenger",
    "ntt:transform",
)

#: Every instrumented site, including ones only reached by explicit
#: serialization round-trips.
ALL_SITES = PIPELINE_SITES + (
    "serialize:proof",
    "serialize:vk",
    "serialize:pk",
)


class FaultSpec:
    """One planned fault: raise *kind* on the *hit*-th check of *site*."""

    __slots__ = ("site", "kind", "hit", "fired")

    def __init__(self, site, kind, hit=1):
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {sorted(KINDS)}")
        if hit < 1:
            raise ValueError(f"hit must be >= 1, got {hit}")
        self.site = site
        self.kind = kind
        self.hit = hit
        self.fired = False

    def to_dict(self):
        return {"site": self.site, "kind": self.kind, "hit": self.hit,
                "fired": self.fired}

    def __repr__(self):
        state = "fired" if self.fired else "armed"
        return f"FaultSpec({self.site}, {self.kind}, hit={self.hit}, {state})"


class FaultInjector:
    """Counts site invocations and raises the planned faults."""

    def __init__(self, plan):
        self.plan = list(plan)
        self.hits = {}

    def check(self, site):
        """Called from an instrumented site; raises if a spec is due."""
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        for spec in self.plan:
            if spec.fired or spec.site != site or spec.hit != n:
                continue
            spec.fired = True
            m = metrics.CURRENT
            if m is not None:
                m.inc("repro_resilience_faults_injected_total")
            raise _make_fault(spec)
        return None

    def arm(self, site):
        """Count one invocation of *site* and return the due spec, if any,
        **without raising** (or marking it fired).

        This is the shippable form of :meth:`check` used by the parallel
        kernels: the parent arms the site once per kernel call (same hit
        cadence as the serial path), sends the due spec into a worker where
        it actually fires, and marks it fired when the worker reports back.
        """
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        for spec in self.plan:
            if spec.fired or spec.site != site or spec.hit != n:
                continue
            return spec
        return None

    def fired(self):
        return [s for s in self.plan if s.fired]

    def pending(self):
        return [s for s in self.plan if not s.fired]


def make_fault(spec):
    """Build the taxonomy exception a :class:`FaultSpec` stands for."""
    cls = KINDS[spec.kind]
    msg = f"injected {spec.kind} fault at {spec.site} (hit {spec.hit})"
    if cls is StageTimeout:
        return cls(msg, stage=spec.site)
    if cls is ArtifactCorruption:
        return cls(msg, artifact=spec.site)
    return cls(msg)


# Backwards-compatible private alias (pre-parallel callers).
_make_fault = make_fault


def schedule(seed, n_faults, sites=PIPELINE_SITES, kinds=None, max_hit=2):
    """Derive a deterministic *n_faults*-entry plan from *seed*.

    Sites and kinds are drawn uniformly (with replacement) and the
    trigger hit from ``1..max_hit``, so repeated chaos runs with one seed
    replay the exact same failure story.
    """
    rng = random.Random(f"chaos:{seed}")
    kinds = sorted(KINDS) if kinds is None else list(kinds)
    plan = []
    for _ in range(n_faults):
        site = rng.choice(list(sites))
        # Stage boundaries are checked once per attempt; deeper hits would
        # never trigger without a preceding retry, so pin them to hit 1.
        hit = 1 if site.startswith("stage:") else rng.randrange(1, max_hit + 1)
        plan.append(FaultSpec(site, rng.choice(kinds), hit=hit))
    return plan


@contextmanager
def injecting(plan_or_injector):
    """Install a :class:`FaultInjector` (or wrap a plan) as ``CURRENT``."""
    global CURRENT
    if CURRENT is not None:
        raise RuntimeError("a fault injector is already active")
    inj = (plan_or_injector if isinstance(plan_or_injector, FaultInjector)
           else FaultInjector(plan_or_injector))
    CURRENT = inj
    try:
        yield inj
    finally:
        CURRENT = None

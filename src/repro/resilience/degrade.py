"""Graceful-degradation policies: when retrying is the wrong answer.

Three policies, each trading speed or precision for forward progress and
each observable through ``repro_resilience_*`` metrics:

- :func:`resilient_msm` — the prover's MSM entry point: Pippenger first,
  and on a kernel :class:`~repro.resilience.errors.TransientFault` fall
  back to the naive double-and-add kernel (slower, but structurally too
  simple to share the bucket kernel's failure).  The success path adds
  one ``try`` frame over calling Pippenger directly.
- :func:`batch_verify_bisect` — when the folded batch check fails it can
  only say "some proof is bad"; bisection re-checks halves and verifies
  singleton leaves individually, returning the exact offending indices
  (``O(b log k)`` extra pairing work for ``b`` bad proofs among ``k``).
- :func:`run_with_memory_guard` — the harness memory guard: re-runs a
  profiling cell with a coarser ``mem_sample`` each time it raises
  :class:`~repro.resilience.errors.ResourceExhausted`, degrading memory
  *precision* instead of failing the cell.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.resilience.errors import ResourceExhausted, TransientFault

__all__ = [
    "batch_verify_bisect",
    "resilient_msm",
    "run_with_memory_guard",
]


def resilient_msm(group, points, scalars, window=None):
    """Bucket-method MSM with naive-kernel fallback on a transient fault.

    The happy path routes through :func:`repro.msm.dispatch.msm_auto`, so
    the prover picks up the optimized kernels (GLV / signed-digit /
    batch-affine — docs/KERNELS.md) wherever they apply.

    With a worker pool installed (:mod:`repro.parallel`) and the input
    large enough, the Pippenger leg runs as the chunked parallel kernel —
    a worker-side transient fault surfaces here typed, so the same
    fallback contract covers both execution modes.
    """
    # Lazy kernel imports: the MSM package instruments its hot paths with
    # resilience fault sites, so importing it here at module load would
    # be circular.
    from repro.msm.dispatch import msm_auto
    from repro.msm.naive import msm_naive
    from repro.parallel.pool import active_pool

    try:
        pool = active_pool()
        if pool is not None and pool.enabled_for(len(points), "msm"):
            from repro.parallel.kernels import msm_parallel

            return msm_parallel(group, points, scalars, pool, window=window)
        return msm_auto(group, points, scalars, window=window)
    except TransientFault:
        m = metrics.CURRENT
        if m is not None:
            m.inc("repro_resilience_msm_fallbacks_total")
        return msm_naive(group, points, scalars)


def batch_verify_bisect(vk, proofs_with_publics, rng):
    """Batch-verify and, on failure, identify the bad proofs.

    Returns ``(ok, bad_indices)``: ``(True, [])`` when the whole batch
    verifies, else ``False`` with the sorted indices (into the input
    order) of every proof that fails individual verification.
    """
    from repro.groth16.batch import batch_verify
    from repro.groth16.verifier import verify

    batch = list(proofs_with_publics)
    if batch_verify(vk, batch, rng):
        return True, []
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_resilience_batch_bisections_total")

    bad = []

    def _bisect(lo, hi):
        # [lo, hi): known (or suspected) to contain at least one bad proof.
        if hi - lo == 1:
            proof, publics = batch[lo]
            if not verify(vk, proof, publics):
                bad.append(lo)
            return
        mid = (lo + hi) // 2
        if not batch_verify(vk, batch[lo:mid], rng):
            _bisect(lo, mid)
        if not batch_verify(vk, batch[mid:hi], rng):
            _bisect(mid, hi)

    _bisect(0, len(batch))
    if m is not None:
        m.inc("repro_resilience_batch_bad_proofs_total", len(bad))
    return False, sorted(bad)


def run_with_memory_guard(run_cell, mem_sample, max_downshifts=3, factor=8):
    """Run ``run_cell(mem_sample)``, downshifting the sampling rate by
    *factor* on each :class:`ResourceExhausted` (at most *max_downshifts*
    times; the last failure propagates).  Returns
    ``(result, effective_mem_sample)``."""
    m = metrics.CURRENT
    for shift in range(max_downshifts + 1):
        try:
            return run_cell(mem_sample), mem_sample
        except ResourceExhausted:
            if shift == max_downshifts:
                raise
            mem_sample = max(1, mem_sample) * factor
            if m is not None:
                m.inc("repro_resilience_mem_downshifts_total")

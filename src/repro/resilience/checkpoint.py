"""Sweep checkpoints and self-verifying pickle payloads.

Two layers:

- :func:`write_checksummed` / :func:`read_checksummed` — the one on-disk
  pickle format of the repo: payload followed by a 32-byte sha256 trailer,
  written atomically (tmp + rename).  A truncated, bit-flipped or
  foreign-format file raises
  :class:`~repro.resilience.errors.ArtifactCorruption` instead of
  deserializing garbage; the harness disk cache and the sweep checkpoints
  both use it.
- :class:`SweepCheckpoint` — per-cell persistence for ``profile_sweep``
  under ``results/checkpoints/sweep_<key>/``: one checksummed file per
  (workload, curve, size, seed) cell plus a human-readable
  ``MANIFEST.json``.  A killed sweep resumes by loading every finished
  cell and recomputing only the rest (``python -m repro sweep --resume``);
  because cells hold the deterministic model profiles, a resumed sweep's
  results are identical to an uninterrupted run's.

Corrupt cells are **self-healing**: load failures evict the file, bump
``repro_resilience_checkpoint_evictions_total``, and report a miss so the
cell is simply recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

from repro.obs import metrics
from repro.resilience.errors import ArtifactCorruption

__all__ = [
    "DEFAULT_DIR",
    "SweepCheckpoint",
    "read_checksummed",
    "write_checksummed",
]

#: Conventional checkpoint directory (relative to the working directory).
DEFAULT_DIR = os.path.join("results", "checkpoints")

_DIGEST_BYTES = 32


def write_checksummed(path, obj):
    """Atomically write ``pickle(obj) + sha256(payload)`` to *path*."""
    payload = pickle.dumps(obj)
    digest = hashlib.sha256(payload).digest()
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(payload)
        f.write(digest)
    os.replace(tmp, path)
    return len(payload) + _DIGEST_BYTES


def read_checksummed(path):
    """Load a checksummed payload; any mismatch raises ``ArtifactCorruption``."""
    with open(path, "rb") as f:
        data = f.read()
    if len(data) <= _DIGEST_BYTES:
        raise ArtifactCorruption(
            f"checksummed payload {path!r} too short",
            artifact=path, expected=f"> {_DIGEST_BYTES} bytes",
            actual=f"{len(data)} bytes",
        )
    payload, trailer = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
    digest = hashlib.sha256(payload).digest()
    if digest != trailer:
        raise ArtifactCorruption(
            f"sha256 mismatch in {path!r}",
            artifact=path, expected=digest.hex()[:16],
            actual=trailer.hex()[:16],
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ArtifactCorruption(
            f"unpicklable payload in {path!r}: {exc}", artifact=path,
        ) from exc


def sweep_key(workload, curve_names, sizes, seed, mem_sample, fingerprint):
    """Stable 16-hex identity of one sweep configuration."""
    text = json.dumps(
        [workload, list(curve_names), list(sizes), seed, mem_sample, fingerprint],
        sort_keys=True,
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class SweepCheckpoint:
    """Per-cell checkpoint store for one sweep configuration."""

    def __init__(self, workload, curve_names, sizes, seed, mem_sample,
                 fingerprint, base_dir=None):
        self.key = sweep_key(workload, curve_names, sizes, seed, mem_sample,
                             fingerprint)
        base = base_dir or DEFAULT_DIR
        self.dir = os.path.join(base, f"sweep_{self.key}")
        self._manifest = {
            "workload": workload,
            "curves": list(curve_names),
            "sizes": list(sizes),
            "seed": seed,
            "mem_sample": mem_sample,
            "fingerprint": fingerprint,
        }

    def _cell_path(self, curve_name, size):
        return os.path.join(self.dir, f"cell_{curve_name}_{size}.pkl")

    def _ensure_dir(self):
        os.makedirs(self.dir, exist_ok=True)
        manifest = os.path.join(self.dir, "MANIFEST.json")
        if not os.path.exists(manifest):
            with open(manifest, "w") as f:
                json.dump(self._manifest, f, indent=2, sort_keys=True)
                f.write("\n")

    def load(self, curve_name, size):
        """The stored profiles for one cell, or ``None`` (missing cells
        and corrupt — then evicted — cells both read as ``None``)."""
        path = self._cell_path(curve_name, size)
        if not os.path.exists(path):
            return None
        m = metrics.CURRENT
        try:
            profiles = read_checksummed(path)
        except ArtifactCorruption:
            try:
                os.remove(path)
            except OSError:
                pass
            if m is not None:
                m.inc("repro_resilience_checkpoint_evictions_total")
            return None
        if m is not None:
            m.inc("repro_resilience_checkpoint_hits_total")
        return profiles

    def store(self, curve_name, size, profiles):
        self._ensure_dir()
        write_checksummed(self._cell_path(curve_name, size), profiles)

    def completed_cells(self):
        """Sorted (curve, size) pairs with a stored cell file."""
        if not os.path.isdir(self.dir):
            return []
        cells = []
        for name in os.listdir(self.dir):
            if name.startswith("cell_") and name.endswith(".pkl"):
                stem = name[len("cell_"):-len(".pkl")]
                curve_name, _, size = stem.rpartition("_")
                if curve_name and size.isdigit():
                    cells.append((curve_name, int(size)))
        return sorted(cells)

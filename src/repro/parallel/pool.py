"""Worker-pool abstraction of the parallel execution layer.

A :class:`WorkerPool` owns N worker processes and maps named *tasks* (from
the registry in :mod:`repro.parallel.tasks`) over payload chunks.  Two
backends share one contract:

``serial``
    Runs every task inline in the calling process — the degenerate pool
    used for ``--workers 1`` and for tests that want the envelope
    semantics without process machinery.
``process``
    A lazily created ``multiprocessing`` pool.  Workers are forked, so
    they inherit the parent's loaded modules for free; the task envelope
    then *resets every process-global instrumentation slot* (trace,
    metrics, spans, profiler, faults, retry policy/deadline) so a worker
    never double-reports into telemetry the parent also records.

The error contract — the part the resilience layer depends on — is that
exceptions never cross the process boundary as pickled tracebacks.  The
envelope catches everything, encodes it as a plain dict
(:func:`encode_error`), and the parent re-raises the *typed* equivalent
(:func:`decode_error`): taxonomy errors come back as their own class,
``ValueError``/``TypeError`` as themselves (API parity with the serial
kernels), and anything else as
:class:`~repro.resilience.errors.WorkerCrash`.

Context shipped with each task (the ``ctx`` dict) carries what a worker
cannot inherit: the remaining seconds of the parent's cooperative
:class:`~repro.resilience.retry.Deadline`, and — for chaos runs — a due
:class:`~repro.resilience.faults.FaultSpec` so the fault actually fires
*inside* the worker (see ``FaultInjector.arm``).

The process-global ``CURRENT`` slot follows the repo-wide idiom
(``trace.CURRENT`` etc.): kernels check ``parallel.CURRENT`` and stay on
the serial path when it is ``None``, when the pool has one worker, or
when a tracer is active (the analytical model must keep seeing the
serial algorithms).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from repro.resilience import retry as resilience
from repro.resilience.errors import (
    ArtifactCorruption,
    PoolStateError,
    ReproError,
    ResourceExhausted,
    StageOrderError,
    StageTimeout,
    TransientFault,
    WorkerCrash,
)

__all__ = [
    "WorkerPool",
    "active_pool",
    "chunk_slices",
    "decode_error",
    "encode_error",
    "parallel_pool",
    "using",
    "workers_from_env",
]

#: The process-global pool slot; ``None`` means parallel execution is off.
CURRENT = None

#: Environment variable read by :func:`workers_from_env` (the no-flag way
#: to turn the backend on: ``REPRO_WORKERS=4 python -m repro prove ...``).
WORKERS_ENV = "REPRO_WORKERS"


def workers_from_env(default=None):
    """Worker count from ``$REPRO_WORKERS``, or *default* when unset/bad."""
    raw = os.environ.get(WORKERS_ENV)
    if not raw:
        return default
    try:
        n = int(raw)
    except ValueError:
        return default
    return n if n >= 1 else default


def chunk_slices(n, parts):
    """Split ``range(n)`` into at most *parts* contiguous ``(start, stop)``
    slices of near-equal size (never emits an empty slice)."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    slices = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


# -- typed-error envelope ----------------------------------------------------------

#: Taxonomy code -> class, for decoding worker-side failures.
_TYPED = {
    "transient": TransientFault,
    "timeout": StageTimeout,
    "corrupt": ArtifactCorruption,
    "resources": ResourceExhausted,
    "order": StageOrderError,
    "pool": PoolStateError,
    "worker": WorkerCrash,
}

#: Untyped exceptions re-raised as themselves for serial-API parity; all
#: other untyped errors become ``WorkerCrash``.
_PASSTHROUGH = {"ValueError": ValueError, "TypeError": TypeError}


def encode_error(exc):
    """Plain-dict form of *exc* — the only shape errors travel in."""
    from repro.resilience.errors import classify

    return {
        "kind": classify(exc),
        "type": type(exc).__name__,
        "message": str(exc),
    }


def decode_error(enc, task=None):
    """Rebuild the typed exception *enc* describes (never a traceback)."""
    kind = enc.get("kind", "untyped")
    message = enc.get("message", "")
    cls = _TYPED.get(kind)
    if cls is not None:
        if cls is WorkerCrash:
            return WorkerCrash(message, task=task, exc_type=enc.get("type"))
        return cls(message)
    cls = _PASSTHROUGH.get(enc.get("type"))
    if cls is not None:
        return cls(message)
    return WorkerCrash(
        f"worker task {task or '?'} raised {enc.get('type', 'Exception')}: {message}",
        task=task,
        exc_type=enc.get("type"),
    )


# -- worker side -------------------------------------------------------------------


def _reset_worker_globals():
    """Clear every process-global instrumentation slot a forked worker
    inherited.  The parent owns telemetry; workers compute."""
    global CURRENT
    from repro.obs import ledger, metrics, prof, spans
    from repro.perf import trace
    from repro.resilience import faults

    trace.CURRENT = None
    metrics.CURRENT = None
    spans.CURRENT = None
    prof.CURRENT = None
    ledger.CURRENT = None
    faults.CURRENT = None
    resilience.CURRENT = None
    resilience.DEADLINE = None
    CURRENT = None


def _run_task(fn_name, payload, ctx):
    """Look up and run one registry task under the shipped context."""
    from repro.parallel import tasks
    from repro.resilience import faults

    fn = tasks.TASKS.get(fn_name)
    if fn is None:
        raise WorkerCrash(f"unknown worker task {fn_name!r}", task=fn_name)
    ctx = ctx or {}
    fault = ctx.get("fault")
    deadline_s = ctx.get("deadline_s")

    def run():
        if deadline_s is None:
            return fn(payload)
        with resilience.deadline_scope(deadline_s):
            return fn(payload)

    if fault is None:
        return run(), []
    # Re-arm the shipped fault spec in this worker.  The parent already
    # matched the hit cadence, so the spec fires on the first site check
    # here (hit=1); ``injecting`` is safe because worker globals are clear.
    spec = faults.FaultSpec(fault["site"], fault["kind"], hit=1)
    with faults.injecting([spec]):
        result = run()
    return result, [s.to_dict() for s in [spec] if s.fired]


def _worker_envelope(job):
    """Top-level task wrapper executed inside a worker process.

    Must stay a module-level function (picklable by reference).  Returns a
    plain dict; never lets an exception propagate to the pool machinery.
    """
    fn_name, payload, ctx = job
    _reset_worker_globals()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        value, fired = _run_task(fn_name, payload, ctx)
        ok, out = True, value
    except BaseException as exc:  # noqa: BLE001 - the envelope is the boundary
        ok, out = False, encode_error(exc)
        # A fault that fired by raising still counts as fired.
        fired = ([dict(ctx["fault"], fired=True)]
                 if ctx and ctx.get("fault") is not None else [])
    return {
        "ok": ok,
        "value": out,
        "fired": fired,
        "pid": os.getpid(),
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
    }


# -- parent side -------------------------------------------------------------------


class WorkerPool:
    """N-worker execution pool with ``serial`` and ``process`` backends.

    Parameters
    ----------
    workers:
        Worker count; ``None`` reads ``$REPRO_WORKERS`` and defaults to 1.
        One worker selects the ``serial`` backend.
    backend:
        Force ``"serial"`` or ``"process"`` (defaults by worker count).
    min_msm / min_ntt / min_witness / min_batch:
        Smallest input sizes worth fanning out; below them kernels stay
        serial.  Tests lower these so tiny differential cells still
        exercise the parallel paths.
    """

    def __init__(self, workers=None, backend=None, *,
                 min_msm=64, min_ntt=64, min_witness=64, min_batch=2):
        if workers is None:
            workers = workers_from_env(default=1)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend is None:
            backend = "serial" if workers == 1 else "process"
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown pool backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self.min_msm = min_msm
        self.min_ntt = min_ntt
        self.min_witness = min_witness
        self.min_batch = min_batch
        self._pool = None
        self._closed = False
        #: pid -> {"tasks", "wall_s", "cpu_s"} accumulated over every map.
        self.worker_stats = {}

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_pool(self):
        if self._closed:
            raise PoolStateError("pool is closed")
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def close(self):
        """Tear down the worker processes (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- execution ----------------------------------------------------------------

    def enabled_for(self, n, kind="msm"):
        """Whether fanning *n* items out through this pool is worthwhile."""
        threshold = getattr(self, f"min_{kind}", 1)
        return self.workers > 1 and n >= threshold

    def map(self, fn_name, payloads, ctxs=None, label=None):
        """Run registry task *fn_name* over *payloads*; results in order.

        *ctxs*, when given, aligns with *payloads* (entries may be
        ``None``).  Each task additionally receives the remaining seconds
        of the parent's active deadline, so workers honor it
        cooperatively.  The first failed task raises its decoded typed
        error after all tasks settle.  Returns ``(results, fired)`` where
        *fired* lists fault-spec dicts that fired inside workers.
        """
        payloads = list(payloads)
        if not payloads:
            return [], []
        base_ctx = {}
        if resilience.DEADLINE is not None:
            base_ctx["deadline_s"] = max(
                0.001, resilience.DEADLINE.seconds - resilience.DEADLINE.elapsed()
            )
        jobs = []
        for i, payload in enumerate(payloads):
            ctx = dict(base_ctx)
            if ctxs is not None and ctxs[i]:
                ctx.update(ctxs[i])
            jobs.append((fn_name, payload, ctx))

        if self.backend == "serial":
            envelopes = [self._run_serial(job) for job in jobs]
        else:
            envelopes = self._ensure_pool().map(_worker_envelope, jobs)

        return self._settle(envelopes, fn_name, label=label)

    def _run_serial(self, job):
        """Inline execution with the same envelope semantics, minus the
        telemetry-slot reset (we *are* the parent process).  The pool slot
        alone is cleared so an inline task never re-enters a kernel."""
        global CURRENT
        fn_name, payload, ctx = job
        from repro.parallel import tasks
        from repro.resilience import faults

        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        fired = []
        prev_pool = CURRENT
        # codelint: ignore[RC103] -- serial backend: parent-side save/restore
        CURRENT = None
        try:
            fn = tasks.TASKS.get(fn_name)
            if fn is None:
                raise WorkerCrash(f"unknown worker task {fn_name!r}", task=fn_name)
            fault = (ctx or {}).get("fault")
            if fault is not None:
                fired = [dict(fault, fired=True)]
                raise faults.make_fault(
                    faults.FaultSpec(fault["site"], fault["kind"], hit=1))
            ok, out = True, fn(payload)
        except BaseException as exc:  # noqa: BLE001
            ok, out = False, encode_error(exc)
        finally:
            CURRENT = prev_pool  # codelint: ignore[RC103] -- restores the saved slot
        return {
            "ok": ok, "value": out, "fired": fired, "pid": os.getpid(),
            "wall_s": time.perf_counter() - wall0,
            "cpu_s": time.process_time() - cpu0,
        }

    def _settle(self, envelopes, fn_name, label=None):
        from repro.obs import metrics, spans

        results = []
        first_err = None
        fired = []
        by_pid = {}
        for env in envelopes:
            fired.extend(env.get("fired") or [])
            stats = self.worker_stats.setdefault(
                env["pid"], {"tasks": 0, "wall_s": 0.0, "cpu_s": 0.0})
            stats["tasks"] += 1
            stats["wall_s"] += env["wall_s"]
            stats["cpu_s"] += env["cpu_s"]
            agg = by_pid.setdefault(env["pid"], {"tasks": 0, "wall_s": 0.0})
            agg["tasks"] += 1
            agg["wall_s"] = round(agg["wall_s"] + env["wall_s"], 6)
            if env["ok"]:
                results.append(env["value"])
            elif first_err is None:
                first_err = decode_error(env["value"], task=fn_name)
        m = metrics.CURRENT
        if m is not None:
            m.inc("repro_parallel_maps_total")
            m.inc("repro_parallel_tasks_total", len(envelopes))
        if spans.CURRENT is not None:
            spans.attach_meta(**{
                f"parallel:{label or fn_name}": {
                    "backend": self.backend,
                    "workers": self.workers,
                    "by_pid": by_pid,
                }
            })
        if first_err is not None:
            raise first_err
        return results, fired


# -- installation ------------------------------------------------------------------


def active_pool():
    """The installed pool when parallel execution should engage, else
    ``None`` — i.e. also ``None`` whenever a tracer is active, so modeled
    runs always see the serial algorithms."""
    pool = CURRENT
    if pool is None:
        return None
    from repro.perf import trace

    if trace.CURRENT is not None:
        return None
    return pool


@contextmanager
def using(pool):
    """Install an existing :class:`WorkerPool` as ``CURRENT``.

    Reentrant for the *same* pool (the workflow wraps every stage; nested
    kernels re-enter); a different pool underneath an active one is a bug.
    """
    global CURRENT
    if pool is None or CURRENT is pool:
        yield pool
        return
    if CURRENT is not None:
        raise PoolStateError("a worker pool is already active")
    CURRENT = pool
    try:
        yield pool
    finally:
        CURRENT = None


@contextmanager
def parallel_pool(workers=None, **kwargs):
    """Create a :class:`WorkerPool`, install it, and close it on exit."""
    pool = WorkerPool(workers, **kwargs)
    try:
        with using(pool):
            yield pool
    finally:
        pool.close()

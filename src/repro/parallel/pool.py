"""Worker-pool abstraction of the parallel execution layer.

A :class:`WorkerPool` owns N worker processes and maps named *tasks* (from
the registry in :mod:`repro.parallel.tasks`) over payload chunks.  Two
backends share one contract:

``serial``
    Runs every task inline in the calling process — the degenerate pool
    used for ``--workers 1`` and for tests that want the envelope
    semantics without process machinery.
``process``
    A lazily created ``multiprocessing`` pool.  Workers are forked, so
    they inherit the parent's loaded modules for free; the task envelope
    then *resets every process-global instrumentation slot* (trace,
    metrics, spans, profiler, faults, retry policy/deadline) so a worker
    never double-reports into telemetry the parent also records.

The error contract — the part the resilience layer depends on — is that
exceptions never cross the process boundary as pickled tracebacks.  The
envelope catches everything, encodes it as a plain dict
(:func:`encode_error`), and the parent re-raises the *typed* equivalent
(:func:`decode_error`): taxonomy errors come back as their own class,
``ValueError``/``TypeError`` as themselves (API parity with the serial
kernels), and anything else as
:class:`~repro.resilience.errors.WorkerCrash`.

Context shipped with each task (the ``ctx`` dict) carries what a worker
cannot inherit: the remaining seconds of the parent's cooperative
:class:`~repro.resilience.retry.Deadline`, and — for chaos runs — a due
:class:`~repro.resilience.faults.FaultSpec` so the fault actually fires
*inside* the worker (see ``FaultInjector.arm``).

When a :class:`~repro.obs.worker.WorkerTelemetry` collector is installed
(``obs.worker.CURRENT``), the same context additionally carries
``telemetry: True`` plus a dispatch timestamp, and the envelope answers
with an opt-in telemetry block: per-task wall/CPU time, peak-RSS delta,
queue wait, payload decode / result encode timings and byte sizes, the
task's metric deltas (captured under a fresh registry, so the snapshot
*is* the delta) and a compact span subtree.  ``_settle`` merges the
blocks back into the parent — ``MetricsRegistry.merge``, span grafting
under the dispatching span, pool-level queue-wait/task-wall histograms
and utilization/imbalance gauges — so the worker layer stops being a
telemetry black box without giving up the hard reset
(``_reset_worker_globals``) that keeps untelemetered workers silent.

The process-global ``CURRENT`` slot follows the repo-wide idiom
(``trace.CURRENT`` etc.): kernels check ``parallel.CURRENT`` and stay on
the serial path when it is ``None``, when the pool has one worker, or
when a tracer is active (the analytical model must keep seeing the
serial algorithms).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from contextlib import contextmanager, nullcontext

from repro.resilience import retry as resilience
from repro.resilience.errors import (
    AdmissionError,
    ArtifactCorruption,
    PoolStateError,
    ReproError,
    ResourceExhausted,
    StageOrderError,
    StageTimeout,
    TransientFault,
    WorkerCrash,
)

__all__ = [
    "WorkerPool",
    "active_pool",
    "chunk_slices",
    "decode_error",
    "encode_error",
    "parallel_pool",
    "using",
    "workers_from_env",
]

#: The process-global pool slot; ``None`` means parallel execution is off.
CURRENT = None

#: Environment variable read by :func:`workers_from_env` (the no-flag way
#: to turn the backend on: ``REPRO_WORKERS=4 python -m repro prove ...``).
WORKERS_ENV = "REPRO_WORKERS"


def workers_from_env(default=None):
    """Worker count from ``$REPRO_WORKERS``, or *default* when unset/empty.

    A set-but-bad value (non-integer, zero, negative) raises ``ValueError``
    rather than silently falling back: a typo in ``REPRO_WORKERS=16``
    should fail loudly as a one-line CLI error, not quietly run serial.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or raw == "":
        return default
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"bad {WORKERS_ENV}={raw!r}: expected a positive integer"
        ) from None
    if n < 1:
        raise ValueError(f"bad {WORKERS_ENV}={raw!r}: workers must be >= 1")
    return n


def chunk_slices(n, parts):
    """Split ``range(n)`` into at most *parts* contiguous ``(start, stop)``
    slices of near-equal size (never emits an empty slice)."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    slices = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


# -- typed-error envelope ----------------------------------------------------------

#: Taxonomy code -> class, for decoding worker-side failures.
_TYPED = {
    "transient": TransientFault,
    "timeout": StageTimeout,
    "corrupt": ArtifactCorruption,
    "resources": ResourceExhausted,
    "admission": AdmissionError,
    "order": StageOrderError,
    "pool": PoolStateError,
    "worker": WorkerCrash,
}

#: Untyped exceptions re-raised as themselves for serial-API parity; all
#: other untyped errors become ``WorkerCrash``.
_PASSTHROUGH = {"ValueError": ValueError, "TypeError": TypeError}


def encode_error(exc):
    """Plain-dict form of *exc* — the only shape errors travel in."""
    from repro.resilience.errors import classify

    return {
        "kind": classify(exc),
        "type": type(exc).__name__,
        "message": str(exc),
    }


def decode_error(enc, task=None):
    """Rebuild the typed exception *enc* describes (never a traceback)."""
    kind = enc.get("kind", "untyped")
    message = enc.get("message", "")
    cls = _TYPED.get(kind)
    if cls is not None:
        if cls is WorkerCrash:
            return WorkerCrash(message, task=task, exc_type=enc.get("type"))
        return cls(message)
    cls = _PASSTHROUGH.get(enc.get("type"))
    if cls is not None:
        return cls(message)
    return WorkerCrash(
        f"worker task {task or '?'} raised {enc.get('type', 'Exception')}: {message}",
        task=task,
        exc_type=enc.get("type"),
    )


# -- worker side -------------------------------------------------------------------


def _reset_worker_globals():
    """Clear every process-global instrumentation slot a forked worker
    inherited.  The parent owns telemetry; workers compute."""
    global CURRENT
    from repro.obs import ledger, metrics, prof, spans
    from repro.obs import worker as obs_worker
    from repro.perf import trace
    from repro.resilience import faults

    trace.CURRENT = None
    metrics.CURRENT = None
    spans.CURRENT = None
    prof.CURRENT = None
    ledger.CURRENT = None
    obs_worker.CURRENT = None
    faults.CURRENT = None
    resilience.CURRENT = None
    resilience.DEADLINE = None
    CURRENT = None


def _run_task(fn_name, payload, ctx):
    """Look up and run one registry task under the shipped context."""
    from repro.parallel import tasks
    from repro.resilience import faults

    fn = tasks.TASKS.get(fn_name)
    if fn is None:
        raise WorkerCrash(f"unknown worker task {fn_name!r}", task=fn_name)
    ctx = ctx or {}
    fault = ctx.get("fault")
    deadline_s = ctx.get("deadline_s")

    def run():
        if deadline_s is None:
            return fn(payload)
        with resilience.deadline_scope(deadline_s):
            return fn(payload)

    if fault is None:
        return run(), []
    # Re-arm the shipped fault spec in this worker.  The parent already
    # matched the hit cadence, so the spec fires on the first site check
    # here (hit=1); ``injecting`` is safe because worker globals are clear.
    spec = faults.FaultSpec(fault["site"], fault["kind"], hit=1)
    with faults.injecting([spec]):
        result = run()
    return result, [s.to_dict() for s in [spec] if s.fired]


def _run_task_telemetered(fn_name, payload, ctx, wall0):
    """Run one task while capturing its telemetry block.

    Only reached when the parent shipped ``telemetry: True`` (a
    :class:`~repro.obs.worker.WorkerTelemetry` collector is installed), so
    the plain path in :func:`_worker_envelope` stays untouched.  The task
    runs under a *fresh* metrics registry and span recorder — worker
    globals were just reset, so installing them cannot nest — which makes
    the shipped snapshot exactly the task's delta.  Returns
    ``(value, fired, telemetry_block)``; the result-encode fields are
    filled in by the envelope after the task clocks stop.
    """
    from repro.obs import metrics, spans

    sent = ctx.get("sent_ts")
    tel = {
        "t0": wall0,
        # perf_counter is CLOCK_MONOTONIC, shared with the forked parent,
        # so dispatch-to-envelope-entry is directly computable.
        "queue_wait_s": round(max(0.0, wall0 - sent), 6)
                        if sent is not None else 0.0,
        "payload_bytes": 0,
    }
    d0 = time.perf_counter()
    if ctx.get("packed"):
        tel["payload_bytes"] = len(payload)
        payload = pickle.loads(payload)
    tel["decode_s"] = round(time.perf_counter() - d0, 6)
    rss0 = spans._rss_peak_kb()
    with metrics.collecting() as reg, \
            spans.recording(f"task:{fn_name}") as rec:
        value, fired = _run_task(fn_name, payload, ctx)
    tel["rss_peak_delta_kb"] = spans._rss_peak_kb() - rss0
    tel["metrics"] = reg.snapshot()
    tel["spans"] = rec.root.to_dict()
    return value, fired, tel


def _worker_envelope(job):
    """Top-level task wrapper executed inside a worker process.

    Must stay a module-level function (picklable by reference).  Returns a
    plain dict; never lets an exception propagate to the pool machinery.
    """
    fn_name, payload, ctx = job
    _reset_worker_globals()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    tel = None
    try:
        if ctx and ctx.get("telemetry"):
            value, fired, tel = _run_task_telemetered(fn_name, payload, ctx,
                                                      wall0)
        else:
            value, fired = _run_task(fn_name, payload, ctx)
        ok, out = True, value
    except BaseException as exc:  # noqa: BLE001 - the envelope is the boundary
        ok, out, tel = False, encode_error(exc), None
        # A fault that fired by raising still counts as fired.
        fired = ([dict(ctx["fault"], fired=True)]
                 if ctx and ctx.get("fault") is not None else [])
    env = {
        "ok": ok,
        "value": out,
        "fired": fired,
        "pid": os.getpid(),
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
    }
    if tel is not None:
        # Pickle the result explicitly (and after the task clocks stop) so
        # the wire cost is measured instead of hidden inside the pool's
        # own serialization of the envelope.
        e0 = time.perf_counter()
        env["value"] = pickle.dumps(out, pickle.HIGHEST_PROTOCOL)
        tel["encode_s"] = round(time.perf_counter() - e0, 6)
        tel["result_bytes"] = len(env["value"])
        env["packed"] = True
        env["telemetry"] = tel
    return env


# -- parent side -------------------------------------------------------------------


class WorkerPool:
    """N-worker execution pool with ``serial`` and ``process`` backends.

    Parameters
    ----------
    workers:
        Worker count; ``None`` reads ``$REPRO_WORKERS`` and defaults to 1.
        One worker selects the ``serial`` backend.
    backend:
        Force ``"serial"`` or ``"process"`` (defaults by worker count).
    min_msm / min_ntt / min_witness / min_batch:
        Smallest input sizes worth fanning out; below them kernels stay
        serial.  Tests lower these so tiny differential cells still
        exercise the parallel paths.
    """

    def __init__(self, workers=None, backend=None, *,
                 min_msm=64, min_ntt=64, min_witness=64, min_batch=2):
        if workers is None:
            workers = workers_from_env(default=1)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend is None:
            backend = "serial" if workers == 1 else "process"
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown pool backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self.min_msm = min_msm
        self.min_ntt = min_ntt
        self.min_witness = min_witness
        self.min_batch = min_batch
        self._pool = None
        self._closed = False
        # Serializes lifecycle transitions (_ensure_pool / close) so a
        # drain thread closing the pool cannot race a mapping thread
        # materializing it — the SIGTERM-drain contract of repro.serve.
        self._lock = threading.Lock()
        #: pid -> {"tasks", "wall_s", "cpu_s"} accumulated over every map.
        self.worker_stats = {}

    # -- lifecycle ----------------------------------------------------------------

    @property
    def closed(self):
        return self._closed

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise PoolStateError("pool is closed")
            if self._pool is None:
                import multiprocessing

                ctx = multiprocessing.get_context(
                    "fork" if "fork" in multiprocessing.get_all_start_methods()
                    else None
                )
                self._pool = ctx.Pool(processes=self.workers)
            return self._pool

    def close(self, graceful=False):
        """Tear down the worker processes (idempotent, thread-safe).

        With ``graceful=True`` outstanding tasks of an in-flight
        :meth:`map` finish and deliver their results before the workers
        exit (``multiprocessing.Pool.close``); the default terminates the
        workers immediately.  Either way ``join()`` reaps every forked
        child, so a drained pool leaves no orphans behind — the property
        the SIGTERM drain of :mod:`repro.serve` (and its test) pins down.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            if graceful:
                pool.close()
            else:
                pool.terminate()
            pool.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- execution ----------------------------------------------------------------

    def enabled_for(self, n, kind="msm"):
        """Whether fanning *n* items out through this pool is worthwhile."""
        threshold = getattr(self, f"min_{kind}", 1)
        return self.workers > 1 and n >= threshold

    def map(self, fn_name, payloads, ctxs=None, label=None):
        """Run registry task *fn_name* over *payloads*; results in order.

        *ctxs*, when given, aligns with *payloads* (entries may be
        ``None``).  Each task additionally receives the remaining seconds
        of the parent's active deadline, so workers honor it
        cooperatively.  The first failed task raises its decoded typed
        error after all tasks settle.  Returns ``(results, fired)`` where
        *fired* lists fault-spec dicts that fired inside workers.
        """
        from repro.obs import spans
        from repro.obs import worker as obs_worker

        if self._closed:
            # Both backends refuse new work after close(); the process
            # path would raise from _ensure_pool anyway, the serial path
            # must not silently keep computing through a drain.
            raise PoolStateError("pool is closed")
        payloads = list(payloads)
        if not payloads:
            return [], []
        tel = obs_worker.CURRENT
        base_ctx = {}
        if resilience.DEADLINE is not None:
            base_ctx["deadline_s"] = max(
                0.001, resilience.DEADLINE.seconds - resilience.DEADLINE.elapsed()
            )
        ship_telemetry = tel is not None and self.backend == "process"
        jobs = []
        parent_encode = []
        for i, payload in enumerate(payloads):
            ctx = dict(base_ctx)
            if ctxs is not None and ctxs[i]:
                ctx.update(ctxs[i])
            if ship_telemetry:
                # Pack the payload ourselves so the encode cost and byte
                # size are measured; the pool then pickles cheap bytes.
                ctx["telemetry"] = True
                ctx["packed"] = True
                e0 = time.perf_counter()
                payload = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
                parent_encode.append(
                    (round(time.perf_counter() - e0, 6), len(payload)))
            jobs.append((fn_name, payload, ctx))

        span_cm = (spans.span(f"parallel:{label or fn_name}",
                              backend=self.backend, workers=self.workers)
                   if tel is not None else nullcontext())
        with span_cm:
            map_start = time.perf_counter()
            if ship_telemetry:
                for _, _, ctx in jobs:
                    ctx["sent_ts"] = map_start
            if self.backend == "serial":
                envelopes = [self._run_serial(job, telemetry=tel is not None)
                             for job in jobs]
            else:
                envelopes = self._ensure_pool().map(_worker_envelope, jobs)
            return self._settle(envelopes, fn_name, label=label,
                                telemetry=tel, map_start=map_start,
                                parent_encode=parent_encode)

    def _run_serial(self, job, telemetry=False):
        """Inline execution with the same envelope semantics, minus the
        telemetry-slot reset (we *are* the parent process).  The pool slot
        alone is cleared so an inline task never re-enters a kernel.

        With *telemetry* on, the envelope grows a light telemetry block:
        the parent's registry and span recorder are already live (nested
        collection is rejected), so metric increments and an inline
        ``task:*`` span land directly and the block only adds what inline
        execution can still measure — the peak-RSS delta and zeroed wire
        costs (nothing crosses a process boundary).
        """
        global CURRENT
        fn_name, payload, ctx = job
        from repro.obs import spans
        from repro.parallel import tasks
        from repro.resilience import faults

        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        rss0 = spans._rss_peak_kb() if telemetry else 0
        fired = []
        prev_pool = CURRENT
        # codelint: ignore[RC103] -- serial backend: parent-side save/restore
        CURRENT = None
        try:
            fn = tasks.TASKS.get(fn_name)
            if fn is None:
                raise WorkerCrash(f"unknown worker task {fn_name!r}", task=fn_name)
            fault = (ctx or {}).get("fault")
            if fault is not None:
                fired = [dict(fault, fired=True)]
                raise faults.make_fault(
                    faults.FaultSpec(fault["site"], fault["kind"], hit=1))
            if telemetry:
                with spans.span(f"task:{fn_name}"):
                    ok, out = True, fn(payload)
            else:
                ok, out = True, fn(payload)
        except BaseException as exc:  # noqa: BLE001
            ok, out = False, encode_error(exc)
        finally:
            CURRENT = prev_pool  # codelint: ignore[RC103] -- restores the saved slot
        env = {
            "ok": ok, "value": out, "fired": fired, "pid": os.getpid(),
            "wall_s": time.perf_counter() - wall0,
            "cpu_s": time.process_time() - cpu0,
        }
        if telemetry and ok:
            env["telemetry"] = {
                "t0": wall0,
                "queue_wait_s": 0.0,
                "decode_s": 0.0,
                "encode_s": 0.0,
                "payload_bytes": 0,
                "result_bytes": 0,
                "rss_peak_delta_kb": spans._rss_peak_kb() - rss0,
                "metrics": None,
                "spans": None,
            }
        return env

    def _settle(self, envelopes, fn_name, label=None, telemetry=None,
                map_start=None, parent_encode=None):
        from repro.obs import metrics, spans

        results = []
        first_err = None
        fired = []
        by_pid = {}
        task_records = []
        m = metrics.CURRENT
        for i, env in enumerate(envelopes):
            fired.extend(env.get("fired") or [])
            stats = self.worker_stats.setdefault(
                env["pid"], {"tasks": 0, "wall_s": 0.0, "cpu_s": 0.0})
            stats["tasks"] += 1
            stats["wall_s"] += env["wall_s"]
            stats["cpu_s"] += env["cpu_s"]
            agg = by_pid.setdefault(env["pid"], {"tasks": 0, "wall_s": 0.0})
            agg["tasks"] += 1
            agg["wall_s"] = round(agg["wall_s"] + env["wall_s"], 6)
            parent_decode = 0.0
            if env["ok"]:
                value = env["value"]
                if env.get("packed"):
                    d0 = time.perf_counter()
                    value = pickle.loads(value)
                    parent_decode = round(time.perf_counter() - d0, 6)
                results.append(value)
            elif first_err is None:
                first_err = decode_error(env["value"], task=fn_name)
            if telemetry is not None:
                task_records.append(self._merge_task(
                    env, i, fn_name, label, telemetry, m,
                    parent_encode, parent_decode))
        if m is not None:
            m.inc("repro_parallel_maps_total")
            m.inc("repro_parallel_tasks_total", len(envelopes))
        if spans.CURRENT is not None:
            spans.attach_meta(**{
                f"parallel:{label or fn_name}": {
                    "backend": self.backend,
                    "workers": self.workers,
                    "by_pid": by_pid,
                }
            })
        if telemetry is not None:
            map_rec = telemetry.record_map(
                label=label or fn_name, task=fn_name, backend=self.backend,
                workers=self.workers,
                start_s=map_start - telemetry.t0,
                wall_s=time.perf_counter() - map_start,
                task_records=task_records)
            if m is not None:
                m.set_gauge("repro_parallel_worker_utilization",
                            map_rec["utilization"])
                m.set_gauge("repro_parallel_chunk_imbalance_ratio",
                            map_rec["imbalance"])
        if first_err is not None:
            raise first_err
        return results, fired

    def _merge_task(self, env, i, fn_name, label, telemetry, m,
                    parent_encode, parent_decode):
        """Fold one envelope's telemetry block into the parent's live
        telemetry (metrics merge, span graft, pool histograms) and return
        the task record for the collector."""
        from repro.obs import spans
        from repro.obs.metrics import TIME_BUCKETS

        rec = {
            "pid": env["pid"],
            "task": fn_name,
            "label": label or fn_name,
            "ok": env["ok"],
            "wall_s": round(env["wall_s"], 6),
            "cpu_s": round(env["cpu_s"], 6),
        }
        tb = env.get("telemetry")
        if tb is not None:
            enc_s, payload_bytes = (parent_encode[i] if parent_encode
                                    else (0.0, tb["payload_bytes"]))
            rec["start_s"] = round(tb["t0"] - telemetry.t0, 6)
            rec["queue_wait_s"] = tb["queue_wait_s"]
            rec["decode_s"] = round(tb["decode_s"] + parent_decode, 6)
            rec["encode_s"] = round(tb.get("encode_s", 0.0) + enc_s, 6)
            rec["payload_bytes"] = payload_bytes
            rec["result_bytes"] = tb.get("result_bytes", 0)
            rec["rss_peak_delta_kb"] = tb["rss_peak_delta_kb"]
            if tb.get("metrics") is not None:
                if m is not None:
                    m.merge(tb["metrics"])
                telemetry.merge_metrics(tb["metrics"])
            rec_now = spans.CURRENT
            if rec_now is not None:
                if tb.get("spans") is not None:
                    spans.graft(tb["spans"],
                                offset_s=tb["t0"] - rec_now.t0,
                                worker_pid=env["pid"])
        if m is not None:
            m.observe("repro_parallel_task_wall_seconds", env["wall_s"],
                      buckets=TIME_BUCKETS)
            if tb is not None:
                m.observe("repro_parallel_queue_wait_seconds",
                          tb["queue_wait_s"], buckets=TIME_BUCKETS)
        return rec


# -- installation ------------------------------------------------------------------


def active_pool():
    """The installed pool when parallel execution should engage, else
    ``None`` — i.e. also ``None`` whenever a tracer is active, so modeled
    runs always see the serial algorithms."""
    pool = CURRENT
    if pool is None:
        return None
    from repro.perf import trace

    if trace.CURRENT is not None:
        return None
    return pool


@contextmanager
def using(pool):
    """Install an existing :class:`WorkerPool` as ``CURRENT``.

    Reentrant for the *same* pool (the workflow wraps every stage; nested
    kernels re-enter); a different pool underneath an active one is a bug.
    """
    global CURRENT
    if pool is None or CURRENT is pool:
        yield pool
        return
    if CURRENT is not None:
        raise PoolStateError("a worker pool is already active")
    CURRENT = pool
    try:
        yield pool
    finally:
        CURRENT = None


@contextmanager
def parallel_pool(workers=None, **kwargs):
    """Create a :class:`WorkerPool`, install it, and close it on exit."""
    pool = WorkerPool(workers, **kwargs)
    try:
        with using(pool):
            yield pool
    finally:
        pool.close()

"""Measured parallel execution backend (``repro.parallel``).

The layer that turns the repo's *analytical* scaling story (Fig. 6/7,
Table VI via :mod:`repro.perf.scaling`) into a *measured* one: a worker
pool (:mod:`~repro.parallel.pool`) plus parent-side kernels
(:mod:`~repro.parallel.kernels`) that chunk the MSM/NTT/witness/batch
hot paths across real processes and reassemble bit-identical results.

Usage::

    from repro import parallel

    with parallel.parallel_pool(workers=4):
        proof = prove(pk, circuit, witness, rng)   # parallel MSM/NTT

or via ``Workflow(..., workers=4)``, ``--workers N`` on the CLI, or
``$REPRO_WORKERS``.  See docs/PARALLELISM.md for the design and the
determinism contract.
"""

from repro.parallel.pool import (
    WorkerPool,
    active_pool,
    chunk_slices,
    decode_error,
    encode_error,
    parallel_pool,
    using,
    workers_from_env,
)

__all__ = [
    "WorkerPool",
    "active_pool",
    "chunk_slices",
    "decode_error",
    "encode_error",
    "parallel_pool",
    "using",
    "workers_from_env",
]

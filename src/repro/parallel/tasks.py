"""Worker-side task registry of the parallel backend.

Every function here runs *inside* a worker process (or inline under the
serial backend) via the envelope in :mod:`repro.parallel.pool`.  Payloads
and results are plain picklable data — ints, tuples, lists, dicts —
never live ``Point``/``Group``/``CurveSpec`` objects: workers rebuild
group handles from curve names through the registry
(:func:`repro.curves.get_curve`), and points travel as affine
raw-coordinate tuples (``None`` for infinity), exactly the form the
serial MSM kernels already consume.

Determinism contract (docs/PARALLELISM.md): each task computes a
well-defined mathematical object — a partial group sum, a length-m
sub-NTT, a batch of field products — whose exact value does not depend
on which worker computed it, so parents can reassemble results that are
bit-identical to the serial algorithms.
"""

from __future__ import annotations

from repro.resilience import retry as resilience

__all__ = ["TASKS", "resolve_group"]


def resolve_group(name):
    """Rebuild a group handle from its ``"<curve>.G1"``/``"<curve>.G2"``
    name in this process's curve registry."""
    from repro.curves import get_curve

    curve_name, _, sub = name.partition(".")
    curve = get_curve(curve_name)
    if sub.lower() == "g1":
        return curve.g1
    if sub.lower() == "g2":
        return curve.g2
    raise ValueError(f"unknown group name {name!r}")


def _point_out(point):
    """Affine wire form of a Point (``None`` encodes infinity)."""
    return point.to_affine()


# -- MSM ---------------------------------------------------------------------------


def msm_chunk(payload):
    """Partial MSM over one chunk of the (points, scalars) input.

    Routes through the serial kernel dispatcher (``msm_auto``), so chunked
    parallel MSMs ride the same optimized fast path (GLV / signed-digit /
    batch-affine) as serial runs — including the ``msm:pippenger``
    fault-site check every bucket kernel performs, which is how a shipped
    chaos fault fires in here — and returns the partial sum as an affine
    tuple.
    """
    from repro.msm.dispatch import msm_auto

    group = resolve_group(payload["group"])
    return _point_out(
        msm_auto(group, payload["points"], payload["scalars"],
                 window=payload.get("window"))
    )


# -- NTT ---------------------------------------------------------------------------


def ntt_sub(payload):
    """One decimated sub-transform: NTT of ``x[j::k]`` under root ``w^k``.

    Checks the ``ntt:transform`` fault site (shipped chaos faults fire
    here) and the cooperative deadline, then runs the raw serial kernel.
    """
    from repro.poly.ntt import transform_raw
    from repro.resilience import faults

    if faults.CURRENT is not None:
        faults.CURRENT.check("ntt:transform")
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()
    return transform_raw(payload["values"], payload["root"], payload["modulus"])


# -- witness -----------------------------------------------------------------------


def witness_mul_chunk(payload):
    """Evaluate a chunk of independent ``mul`` witness steps.

    Each step ships its two frozen linear combinations plus the values of
    every wire they reference; the result list aligns with the chunk.
    """
    modulus = payload["modulus"]
    values = payload["values"]
    out = []
    for a_terms, a_const, b_terms, b_const in payload["steps"]:
        # Lazy reduction: exact integer accumulation, one ``%`` per side
        # (bit-identical to per-term reduction — docs/KERNELS.md).
        acc_a = a_const
        for wire, coeff in a_terms:
            acc_a += coeff * values[wire]
        acc_b = b_const
        for wire, coeff in b_terms:
            acc_b += coeff * values[wire]
        out.append((acc_a % modulus) * (acc_b % modulus) % modulus)
    return out


# -- fixed-base (setup) ------------------------------------------------------------

#: Per-process table cache: (curve, sub, width, bits) -> FixedBaseTable.
#: Worker processes persist across map calls, so rebuilds amortize.
_FIXED_BASE_TABLES = {}


def fixed_base_chunk(payload):
    """Fixed-base multiples of the group generator for a scalar chunk."""
    from repro.msm.fixed_base import FixedBaseTable

    key = (payload["group"], payload["width"], payload["bits"])
    table = _FIXED_BASE_TABLES.get(key)
    if table is None:
        group = resolve_group(payload["group"])
        table = FixedBaseTable(group.generator, width=payload["width"],
                               bits=payload["bits"])
        # codelint: ignore[RC103] -- per-process memo; workers never share it
        _FIXED_BASE_TABLES[key] = table
    return [_point_out(table.mul(k)) for k in payload["scalars"]]


# -- batch verification ------------------------------------------------------------


def batch_verify_chunk(payload):
    """Batch-verify one chunk of serialized proofs against a shared vk."""
    import random

    from repro.groth16.batch import batch_verify
    from repro.groth16.serialize import proof_from_bytes, vk_from_bytes

    vk = vk_from_bytes(payload["vk"])
    batch = [(proof_from_bytes(blob), publics)
             for blob, publics in payload["proofs"]]
    rng = random.Random(payload["seed"])
    return bool(batch_verify(vk, batch, rng))


# -- pool self-tests ---------------------------------------------------------------


def selftest_square(payload):
    """Trivial task for pool contract tests (also checks a fault site)."""
    from repro.resilience import faults

    if faults.CURRENT is not None:
        faults.CURRENT.check("parallel:selftest")
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()
    return payload["x"] * payload["x"]


def selftest_fail(payload):
    """Raise the exception class named in the payload (error-contract tests)."""
    from repro.resilience import errors

    name = payload["type"]
    message = payload.get("message", "selftest failure")
    cls = getattr(errors, name, None)
    if cls is None:
        cls = {"ValueError": ValueError, "RuntimeError": RuntimeError,
               "KeyError": KeyError}.get(name, RuntimeError)
    raise cls(message)


#: Name -> callable registry the worker envelope dispatches through.
TASKS = {
    "msm_chunk": msm_chunk,
    "ntt_sub": ntt_sub,
    "witness_mul_chunk": witness_mul_chunk,
    "fixed_base_chunk": fixed_base_chunk,
    "batch_verify_chunk": batch_verify_chunk,
    "selftest_square": selftest_square,
    "selftest_fail": selftest_fail,
}

"""Parent-side parallel kernels: chunk, ship, reassemble.

Each kernel mirrors one serial hot path — Pippenger MSM, the iterative
NTT, witness-program evaluation, the setup's fixed-base sweeps, batch
verification — by fanning chunks out through the installed
:class:`~repro.parallel.pool.WorkerPool` and reassembling the partial
results into *exactly* the value the serial algorithm produces:

- **MSM** — the group sum is associative and the arithmetic exact, so
  partial sums over scalar chunks recombine to the identical point (the
  serialized affine form is bit-identical; intermediate Jacobian ``Z``
  coordinates may differ, which serialization normalizes away).
- **NTT** — decimation by ``k``: sub-transform ``j`` is the length-``n/k``
  NTT of ``x[j::k]`` under ``root^k``, and the parent combines
  ``X[t] = sum_j root^(j*t) * Sub_j[t mod n/k]``.  Modular arithmetic is
  exact, and the transform is mathematically unique, so the output ints
  equal the serial ones.
- **witness** — steps are grouped into dependency *levels* (a step's
  level is one past the deepest wire it reads); steps within a level are
  independent by single assignment, so ``mul`` batches fan out while
  hints (arbitrary Python callables) stay in the parent.
- **fixed-base** — workers rebuild the deterministic generator table and
  return affine multiples; only the point representation (``Z == 1``)
  differs from the serial walk, never the point.

Resilience interop: each kernel *arms* its serial fault site
(``FaultInjector.arm``) with the same per-call cadence as the serial
kernel, ships a due spec into the first chunk's context so the fault
fires inside a worker, and re-raises the decoded typed error at the
parent — the retry/degrade policies above cannot tell the difference
from a serial fault.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.resilience import faults
from repro.resilience import retry as resilience
from repro.resilience.errors import ReproError

__all__ = [
    "batch_verify_parallel",
    "fixed_base_mul_many",
    "msm_parallel",
    "ntt_transform_parallel",
    "run_witness_program",
    "witness_levels",
]


def _point_in(group, aff):
    """Decode an affine wire tuple back into a Point of *group*."""
    if aff is None:
        return group.infinity()
    return group.point_unchecked(*aff)


def _arm_site(site):
    """Arm the fault site (serial cadence) and return ``(spec, ctxs_entry)``."""
    inj = faults.CURRENT
    if inj is None:
        return None, None
    spec = inj.arm(site)
    if spec is None:
        return None, None
    return spec, {"fault": {"site": spec.site, "kind": spec.kind}}


def _mapped(pool, fn_name, payloads, spec=None, fault_ctx=None, label=None):
    """``pool.map`` with fault-spec shipping: a due spec rides with the
    first chunk, fires inside that worker, and is marked fired here —
    whether it surfaced as the expected typed error or (if the worker
    never reached the site) is raised by the parent itself."""
    ctxs = None
    if fault_ctx is not None:
        ctxs = [None] * len(payloads)
        ctxs[0] = fault_ctx
    try:
        results, fired = pool.map(fn_name, payloads, ctxs=ctxs, label=label)
    except ReproError:
        if spec is not None:
            _mark_fired(spec)
        raise
    if spec is not None:
        # Worker never reached the site (degenerate chunk): preserve the
        # fires-once guarantee by raising the fault at the parent.
        _mark_fired(spec)
        raise faults.make_fault(spec)
    return results


def _mark_fired(spec):
    if spec.fired:
        return
    spec.fired = True
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_resilience_faults_injected_total")


# -- MSM ---------------------------------------------------------------------------


def msm_parallel(group, points, scalars, pool, window=None):
    """Chunked Pippenger MSM: partial sums in workers, reduced here.

    Drop-in for :func:`repro.msm.pippenger.msm_pippenger` (same filtering
    and fault-site cadence); the returned point equals the serial result.
    """
    if len(points) != len(scalars):
        raise ValueError(
            f"points/scalars length mismatch: {len(points)} vs {len(scalars)}")
    if window is not None and not 1 <= window <= 32:
        raise ValueError(f"window width must be in [1, 32], got {window}")
    order = group.order
    pairs = [
        (pt, k % order)
        for pt, k in zip(points, scalars)
        if pt is not None and k % order != 0
    ]
    if not pairs:
        return group.infinity()

    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_msm_pippenger_calls_total")
        m.observe("repro_msm_points", len(pairs))
        m.inc("repro_parallel_msm_total")
    spec, fault_ctx = _arm_site("msm:pippenger")
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()

    from repro.parallel.pool import chunk_slices

    slices = chunk_slices(len(pairs), pool.workers)
    payloads = [
        {
            "group": group.name,
            "points": [pt for pt, _ in pairs[start:stop]],
            "scalars": [k for _, k in pairs[start:stop]],
            "window": window,
        }
        for start, stop in slices
    ]
    partials = _mapped(pool, "msm_chunk", payloads, spec=spec,
                       fault_ctx=fault_ctx, label="msm")
    acc = group.infinity()
    for aff in partials:
        acc = acc + _point_in(group, aff)
    return acc


# -- NTT ---------------------------------------------------------------------------


def _sub_count(workers, n):
    """Largest power-of-two sub-transform count <= workers with subs of
    length >= 2."""
    k = 1
    while k * 2 <= workers and (n // (k * 2)) >= 2:
        k *= 2
    return k


def ntt_transform_parallel(field, values, root, pool):
    """Decimated parallel NTT; returns a new list equal to the serial
    transform of *values* under *root* (exact modular arithmetic, so the
    ints are identical)."""
    n = len(values)
    r = field.modulus
    k = _sub_count(pool.workers, n)
    if k < 2:
        from repro.poly.ntt import transform_raw

        if faults.CURRENT is not None:
            faults.CURRENT.check("ntt:transform")
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        return transform_raw(list(values), root, r)

    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_ntt_transforms_total")
        m.inc("repro_ntt_butterflies_total", (n >> 1) * (n.bit_length() - 1))
        m.observe("repro_ntt_size", n)
        m.inc("repro_parallel_ntt_total")
    spec, fault_ctx = _arm_site("ntt:transform")
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()

    sub_root = pow(root, k, r)
    payloads = [
        {"values": values[j::k], "root": sub_root, "modulus": r}
        for j in range(k)
    ]
    subs = _mapped(pool, "ntt_sub", payloads, spec=spec,
                   fault_ctx=fault_ctx, label="ntt")

    # Parent combine: X[t] = sum_j root^(j*t) * Sub_j[t mod m_len].
    m_len = n // k
    w_pows = [1] * n
    acc = 1
    for i in range(1, n):
        acc = acc * root % r
        w_pows[i] = acc
    out = [0] * n
    for t_idx in range(n):
        tm = t_idx % m_len
        total = 0
        jt = 0
        for j in range(k):
            total += w_pows[jt] * subs[j][tm]
            jt += t_idx
            if jt >= n:
                jt %= n
        out[t_idx] = total % r
    return out


# -- witness -----------------------------------------------------------------------


def witness_levels(circuit):
    """Dependency levels of the witness program (cached on the circuit).

    Returns a list of levels; each level is a list of step indices whose
    operands were all produced at strictly earlier levels (or are circuit
    inputs), so the steps inside one level are mutually independent.
    """
    plan = getattr(circuit, "_parallel_levels", None)
    if plan is not None:
        return plan
    # Cooperative deadline poll before the O(program) planning sweep.
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()
    wire_level = {}
    step_level = []
    for step in circuit.program:
        if step[0] == "mul":
            _, fa, fb, out = step
            deps = [w for w, _ in fa[0]]
            deps += [w for w, _ in fb[0]]
            outs = (out,)
        else:  # hint
            _, _fn, frozen_ins, outs = step
            deps = [w for fz in frozen_ins for w, _ in fz[0]]
        lvl = 0
        for w in deps:
            wl = wire_level.get(w, 0)
            if wl > lvl:
                lvl = wl
        lvl += 1
        step_level.append(lvl)
        for w in outs:
            wire_level[w] = lvl
    n_levels = max(step_level, default=0)
    plan = [[] for _ in range(n_levels)]
    for idx, lvl in enumerate(step_level):
        plan[lvl - 1].append(idx)
    try:
        circuit._parallel_levels = plan
    except AttributeError:  # pragma: no cover - frozen circuit variants
        pass
    return plan


def run_witness_program(circuit, fr, signals, pool):
    """Level-scheduled witness evaluation, mutating *signals* in place.

    Exactly replicates the serial interpreter's results: hints run in the
    parent in program order; ``mul`` batches within a level fan out with
    the referenced wire values shipped alongside.
    """
    from repro.groth16.witness import WitnessError, _eval_frozen
    from repro.parallel.pool import chunk_slices

    program = circuit.program
    modulus = fr.modulus
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_parallel_witness_levels_total", 0)

    for level in witness_levels(circuit):
        # Poll once per dependency level — between fan-outs, never inside.
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        muls = []
        for idx in level:
            step = program[idx]
            kind = step[0]
            if kind == "mul":
                muls.append(step)
            elif kind == "hint":
                _, fn, frozen_ins, outs = step
                values = [_eval_frozen(fr, fz, signals) for fz in frozen_ins]
                results = fn(fr, values)
                if len(results) != len(outs):
                    raise WitnessError(
                        f"hint at step {idx} returned {len(results)} values, "
                        f"expected {len(outs)}"
                    )
                for wire, val in zip(outs, results):
                    signals[wire] = val % modulus
            else:
                raise WitnessError(f"unknown witness program step {kind!r}")
        if not muls:
            continue
        if len(muls) < max(2, pool.min_witness // 4) or pool.workers < 2:
            for _, fa, fb, out in muls:
                signals[out] = fr.mul(
                    _eval_frozen(fr, fa, signals), _eval_frozen(fr, fb, signals)
                )
            continue
        if m is not None:
            m.inc("repro_parallel_witness_levels_total")
        payloads = []
        for start, stop in chunk_slices(len(muls), pool.workers):
            chunk = muls[start:stop]
            needed = {}
            steps = []
            for _, fa, fb, _out in chunk:
                for w, _c in fa[0]:
                    needed[w] = signals[w]
                for w, _c in fb[0]:
                    needed[w] = signals[w]
                steps.append((fa[0], fa[1], fb[0], fb[1]))
            payloads.append({"modulus": modulus, "values": needed, "steps": steps})
        chunks, _ = pool.map("witness_mul_chunk", payloads, label="witness")
        flat = [v for chunk in chunks for v in chunk]
        for (_, _fa, _fb, out), value in zip(muls, flat):
            signals[out] = value


# -- fixed-base (setup) ------------------------------------------------------------


def fixed_base_mul_many(table, scalars, pool):
    """Parallel :meth:`FixedBaseTable.mul_many` over the group generator.

    Workers rebuild the (deterministic) generator table once per process
    and cache it; results decode to ``Z == 1`` points whose serialized
    form is identical to the serial walk's.
    """
    group = table.group
    from repro.parallel.pool import chunk_slices

    scalars = list(scalars)
    payloads = [
        {
            "group": group.name,
            "width": table.width,
            "bits": table.bits,
            "scalars": scalars[start:stop],
        }
        for start, stop in chunk_slices(len(scalars), pool.workers)
    ]
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_parallel_fixed_base_total")
    chunks, _ = pool.map("fixed_base_chunk", payloads, label="fixed_base")
    return [_point_in(group, aff) for chunk in chunks for aff in chunk]


# -- batch verification ------------------------------------------------------------


def batch_verify_parallel(vk, batch, rng, pool):
    """Fan a proof batch out in chunks; True iff every chunk verifies.

    Each chunk gets an independent weight seed drawn from *rng*, so the
    accept/reject outcome matches the serial check (soundness per chunk
    is the same 2^-128 folding argument; the exact random weights differ,
    which the boolean contract never exposes).
    """
    from repro.groth16.serialize import proof_to_bytes, vk_to_bytes
    from repro.parallel.pool import chunk_slices

    vk_blob = vk_to_bytes(vk)
    if resilience.DEADLINE is not None:
        resilience.DEADLINE.check()
    payloads = []
    for start, stop in chunk_slices(len(batch), pool.workers):
        chunk = batch[start:stop]
        payloads.append({
            "vk": vk_blob,
            "proofs": [(proof_to_bytes(p), list(publics)) for p, publics in chunk],
            "seed": rng.getrandbits(64),
        })
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_parallel_batch_verify_total")
    results, _ = pool.map("batch_verify_chunk", payloads, label="batch_verify")
    return all(results)

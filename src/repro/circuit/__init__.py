"""Arithmetic circuits and the *compile* stage.

This package plays circom's role in the paper's workflow (Fig. 1): circuits
are authored against :class:`~repro.circuit.dsl.CircuitBuilder` (signals are
linear combinations; multiplication gates create wires and constraints), and
:func:`~repro.circuit.compiler.compile_circuit` lowers the gate list into a
:class:`~repro.circuit.r1cs.R1CS` plus a witness-generation program.

:mod:`repro.circuit.gadgets` carries the reusable sub-circuits, including
the paper's ``exponentiate`` benchmark circuit (``y = x^e`` with ``e``
multiplication constraints, Fig. 2).
"""

from repro.circuit.dsl import CircuitBuilder, Signal
from repro.circuit.r1cs import R1CS
from repro.circuit.compiler import CompiledCircuit, compile_circuit
from repro.circuit.optimizer import OptimizationReport, optimize
from repro.circuit import gadgets, poseidon

__all__ = [
    "CircuitBuilder",
    "CompiledCircuit",
    "OptimizationReport",
    "R1CS",
    "Signal",
    "compile_circuit",
    "gadgets",
    "optimize",
    "poseidon",
]

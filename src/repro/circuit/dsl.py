"""Circuit-authoring DSL (circom's front-end role).

Signals are affine linear combinations of wires; additions and scalings are
free (no constraints), multiplications allocate a new wire and a rank-1
constraint — exactly circom's cost model, which is why the paper can equate
"number of constraints" with the exponent of its benchmark circuit.

Out-of-circuit *hints* mirror circom's ``<--`` operator: a Python callable
computes auxiliary wires during witness generation, and the author must pin
the values down with explicit constraints (e.g. ``is_zero`` computes an
inverse as a hint and constrains ``x * out == 0``).
"""

from __future__ import annotations

__all__ = ["CircuitBuilder", "Signal"]


class Signal:
    """An affine combination ``const + sum(coeff_w * wire_w)`` over a builder."""

    __slots__ = ("builder", "terms", "const")

    def __init__(self, builder, terms=None, const=0):
        self.builder = builder
        self.terms = dict(terms or {})
        self.const = const % builder.fr.modulus

    # -- linear algebra (free: no constraints) -----------------------------------

    def _coerce(self, other):
        if isinstance(other, Signal):
            if other.builder is not self.builder:
                raise ValueError("cannot mix signals from different circuits")
            return other
        if isinstance(other, int):
            return Signal(self.builder, {}, other)
        return None

    def __add__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        f = self.builder.fr
        terms = dict(self.terms)
        for w, c in o.terms.items():
            nc = f.add(terms.get(w, 0), c)
            if nc:
                terms[w] = nc
            else:
                terms.pop(w, None)
        return Signal(self.builder, terms, f.add(self.const, o.const))

    __radd__ = __add__

    def __neg__(self):
        f = self.builder.fr
        return Signal(self.builder, {w: f.neg(c) for w, c in self.terms.items()}, f.neg(self.const))

    def __sub__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o + (-self)

    def scale(self, k):
        """Multiply by a field constant (free)."""
        f = self.builder.fr
        k %= f.modulus
        return Signal(
            self.builder,
            {w: f.mul(c, k) for w, c in self.terms.items() if f.mul(c, k)},
            f.mul(self.const, k),
        )

    def __mul__(self, other):
        """Signal * int is a free scaling; Signal * Signal is a gate."""
        if isinstance(other, int):
            return self.scale(other)
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self.builder.mul(self, o)

    __rmul__ = __mul__

    def is_constant(self):
        return not self.terms

    def __repr__(self):
        parts = [f"{c}*w{w}" for w, c in sorted(self.terms.items())]
        if self.const or not parts:
            parts.append(str(self.const))
        return "Signal(" + " + ".join(parts) + ")"


class CircuitBuilder:
    """Accumulates wires, gates and constraints for one circuit.

    Wire 0 is the constant 1.  Gates are recorded both as R1CS constraints
    and as a *witness program* — the straight-line recipe the witness stage
    replays to fill in every internal wire from the circuit inputs.
    """

    def __init__(self, name, fr):
        self.name = name
        self.fr = fr
        self.n_wires = 1  # wire 0 == constant 1
        self.labels = {0: "one"}
        self.public_wires = [0]
        self.input_wires = {}  # name -> wire (public and private)
        self.output_wires = {}  # name -> wire
        self.constraints = []  # (a_terms, b_terms, c_terms) sparse dicts
        self.program = []  # witness-generation steps

    # -- wires and inputs ------------------------------------------------------------

    def _new_wire(self, label):
        w = self.n_wires
        self.n_wires += 1
        if label:
            self.labels[w] = label
        return w

    def _input(self, name, public):
        if name in self.input_wires:
            raise ValueError(f"duplicate input name {name!r}")
        w = self._new_wire(name)
        self.input_wires[name] = w
        if public:
            self.public_wires.append(w)
        return Signal(self, {w: 1})

    def public_input(self, name):
        """Declare a verifier-visible input signal."""
        return self._input(name, public=True)

    def private_input(self, name):
        """Declare a prover-only input signal."""
        return self._input(name, public=False)

    def constant(self, value):
        """A constant signal (no wire allocated)."""
        return Signal(self, {}, value)

    def one(self):
        """The constant-1 signal."""
        return Signal(self, {}, 1)

    # -- gates -----------------------------------------------------------------------

    def mul(self, a, b):
        """Multiply two signals: allocates a wire and one constraint.

        Constant operands short-circuit to free scalings, as circom does.
        """
        if a.is_constant():
            return b.scale(a.const)
        if b.is_constant():
            return a.scale(b.const)
        out = self._new_wire(None)
        self.constraints.append((dict(a.terms), dict(b.terms), {out: 1}))
        self._attach_consts(-1, a, b)
        self.program.append(("mul", _freeze(a), _freeze(b), out))
        return Signal(self, {out: 1})

    def _attach_consts(self, idx, a, b):
        """Fold the affine constants of *a*, *b* into the stored constraint."""
        cons_a, cons_b, _ = self.constraints[idx]
        if a.const:
            cons_a[0] = self.fr.add(cons_a.get(0, 0), a.const)
        if b.const:
            cons_b[0] = self.fr.add(cons_b.get(0, 0), b.const)

    def identity_gate(self, sig):
        """Force a gate ``out = sig * 1`` (one wire, one constraint).

        Unlike :meth:`mul` this never constant-folds — it exists for
        circuits that deliberately count a pass-through gate, like the
        paper's Fig. 2 ``w0 = x * 1``.
        """
        out = self._new_wire(None)
        ta = dict(sig.terms)
        if sig.const:
            ta[0] = sig.const
        self.constraints.append((ta, {0: 1}, {out: 1}))
        self.program.append(("mul", _freeze(sig), _freeze(self.one()), out))
        return Signal(self, {out: 1})

    def assert_equal(self, a, b):
        """Constrain ``a == b`` (one constraint, no new wire)."""
        diff = a - b
        if diff.is_constant():
            if diff.const != 0:
                raise ValueError(f"{self.name}: assert_equal of unequal constants")
            return
        lc = dict(diff.terms)
        if diff.const:
            lc[0] = diff.const
        self.constraints.append((lc, {0: 1}, {}))

    def assert_mul(self, a, b, c):
        """Constrain ``a * b == c`` without allocating a wire."""
        ta = dict(a.terms)
        if a.const:
            ta[0] = a.const
        tb = dict(b.terms)
        if b.const:
            tb[0] = b.const
        tc = dict(c.terms)
        if c.const:
            tc[0] = c.const
        self.constraints.append((ta, tb, tc))

    def hint(self, fn, inputs, n_out, label=None):
        """Allocate *n_out* wires computed out-of-circuit by ``fn``.

        ``fn(field, values) -> list[int]`` receives the evaluated input
        signals during witness generation.  Hints add **no** constraints —
        the caller must constrain the outputs (soundness is the author's
        responsibility, exactly as with circom's ``<--``).
        """
        outs = [self._new_wire(f"{label}[{i}]" if label else None) for i in range(n_out)]
        self.program.append(("hint", fn, [_freeze(s) for s in inputs], outs))
        return [Signal(self, {w: 1}) for w in outs]

    def make_wire(self, sig, label=None):
        """Force a (possibly composite) signal onto its own wire."""
        if len(sig.terms) == 1 and sig.const == 0 and next(iter(sig.terms.values())) == 1:
            return sig  # already a bare wire
        out = self._new_wire(label)
        ta = dict(sig.terms)
        if sig.const:
            ta[0] = sig.const
        self.constraints.append((ta, {0: 1}, {out: 1}))
        self.program.append(("mul", _freeze(sig), _freeze(self.one()), out))
        return Signal(self, {out: 1})

    def output(self, sig, name):
        """Expose a signal as a named public output."""
        if name in self.output_wires:
            raise ValueError(f"duplicate output name {name!r}")
        wire_sig = self.make_wire(sig, label=name)
        w = next(iter(wire_sig.terms))
        self.output_wires[name] = w
        if w not in self.public_wires:
            self.public_wires.append(w)
        return wire_sig


def _freeze(sig):
    """Snapshot a signal as ``(terms_tuple, const)`` for the witness program."""
    return (tuple(sorted(sig.terms.items())), sig.const)

"""Rank-1 Constraint Systems.

An R1CS over the scalar field is a list of constraints
``<A_j, z> * <B_j, z> = <C_j, z>`` on the witness vector ``z``, with
``z[0] == 1`` by convention (Section II-C of the paper; Fig. 2 shows the
``y = x^3`` instance).  Rows are stored sparsely as ``{wire: coeff}`` maps —
the same shape circom's ``.r1cs`` format uses.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["R1CS", "Constraint"]


@dataclass(frozen=True)
class Constraint:
    """One R1CS row: three sparse linear combinations ``A * B = C``."""

    a: dict
    b: dict
    c: dict

    def wires(self):
        """Every wire index referenced by this constraint."""
        return set(self.a) | set(self.b) | set(self.c)


class R1CS:
    """A complete constraint system plus its public-wire layout.

    Parameters
    ----------
    fr:
        The scalar :class:`~repro.fields.prime_field.PrimeField`.
    n_wires:
        Total witness length, including the constant wire 0.
    public_wires:
        Wire indices visible to the verifier, **starting with wire 0**
        (the constant one) followed by declared public inputs and outputs.
    constraints:
        List of :class:`Constraint`.
    labels:
        Optional ``{wire: name}`` map for diagnostics.
    """

    def __init__(self, fr, n_wires, public_wires, constraints, labels=None):
        if not public_wires or public_wires[0] != 0:
            raise ValueError("public_wires must start with the constant wire 0")
        if len(set(public_wires)) != len(public_wires):
            raise ValueError("public_wires contains duplicates")
        for w in public_wires:
            if not 0 <= w < n_wires:
                raise ValueError(f"public wire {w} out of range (n_wires={n_wires})")
        self.fr = fr
        self.n_wires = n_wires
        self.public_wires = list(public_wires)
        self.constraints = list(constraints)
        self.labels = dict(labels or {})

    @property
    def n_constraints(self):
        return len(self.constraints)

    @property
    def n_public(self):
        """Number of verifier-visible wires (including the constant)."""
        return len(self.public_wires)

    def private_wires(self):
        """All wires the verifier does not see, in index order."""
        pub = set(self.public_wires)
        return [w for w in range(self.n_wires) if w not in pub]

    # -- evaluation ----------------------------------------------------------------

    def eval_lc(self, row, witness):
        """Evaluate a sparse linear combination against a witness vector.

        Lazy reduction: one deferred ``% p`` over the whole sum instead of
        one per term (identical result, same traced primitive counts).
        """
        return self.fr.lincomb((coeff, witness[wire]) for wire, coeff in row.items())

    def is_satisfied(self, witness):
        """True iff every constraint holds for *witness* (``witness[0] == 1``)."""
        return self.check(witness) is None

    def check(self, witness):
        """Return ``None`` if satisfied, else the index of the first
        violated constraint (with a sanity check on the constant wire)."""
        if len(witness) != self.n_wires:
            raise ValueError(f"witness length {len(witness)} != n_wires {self.n_wires}")
        if witness[0] != 1:
            return -1
        f = self.fr
        for j, cons in enumerate(self.constraints):
            lhs = f.mul(self.eval_lc(cons.a, witness), self.eval_lc(cons.b, witness))
            if lhs != self.eval_lc(cons.c, witness):
                return j
        return None

    # -- metadata -----------------------------------------------------------------------

    def stats(self):
        """Shape summary used by reports: wires, constraints, nonzeros."""
        nnz = sum(len(c.a) + len(c.b) + len(c.c) for c in self.constraints)
        return {
            "n_wires": self.n_wires,
            "n_public": self.n_public,
            "n_constraints": self.n_constraints,
            "nonzeros": nnz,
        }

    def __repr__(self):
        return (
            f"R1CS({self.fr.name}, wires={self.n_wires}, "
            f"public={self.n_public}, constraints={self.n_constraints})"
        )

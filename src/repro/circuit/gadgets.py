"""Reusable sub-circuits (circomlib's role).

Includes the paper's benchmark circuit — ``exponentiate`` (Fig. 2: ``y =
x^e`` built from ``e`` multiplication gates, so constraint count equals the
exponent) — plus the standard gadget toolbox used by the domain examples:
bit decomposition, comparators, multiplexers, boolean algebra, and a
MiMC-style permutation for hash-preimage circuits.
"""

from __future__ import annotations

__all__ = [
    "assert_boolean",
    "assert_nonzero",
    "bits_to_num",
    "divide",
    "dot_product",
    "exponentiate",
    "is_equal",
    "is_zero",
    "less_than",
    "logical_and",
    "logical_not",
    "logical_or",
    "logical_xor",
    "mimc_permutation",
    "mimc_hash_chain",
    "mux",
    "num_to_bits",
    "select",
]


def exponentiate(builder, x, exponent):
    """The paper's benchmark circuit: ``y = x^exponent``.

    Built exactly as Fig. 2 describes — a first ``w0 = x * 1`` gate followed
    by ``exponent - 1`` chained multiplications — so the number of
    multiplication constraints equals *exponent*.
    """
    if exponent < 1:
        raise ValueError(f"exponent must be >= 1, got {exponent}")
    acc = builder.identity_gate(x)  # w0 = x * 1
    for _ in range(exponent - 1):
        acc = builder.mul(x, acc)
    return acc


def assert_boolean(builder, s):
    """Constrain ``s in {0, 1}`` via ``s * (s - 1) == 0``."""
    builder.assert_mul(s, s - 1, builder.constant(0))


def num_to_bits(builder, x, n_bits):
    """Decompose *x* into *n_bits* boolean wires (little-endian).

    The bits are produced by a hint and pinned down by booleanity
    constraints plus the recomposition equality — circom's ``Num2Bits``.
    """
    def _hint(fr, values):
        v = values[0]
        return [(v >> i) & 1 for i in range(n_bits)]

    bits = builder.hint(_hint, [x], n_bits, label="bit")
    acc = builder.constant(0)
    for i, b in enumerate(bits):
        assert_boolean(builder, b)
        acc = acc + b.scale(1 << i)
    builder.assert_equal(acc, x)
    return bits


def bits_to_num(builder, bits):
    """Recompose little-endian boolean signals into one signal (free)."""
    acc = builder.constant(0)
    for i, b in enumerate(bits):
        acc = acc + b.scale(1 << i)
    return acc


def is_zero(builder, x):
    """Return a signal that is 1 iff ``x == 0`` (circom's ``IsZero``).

    Uses the classic inverse hint: ``out = 1 - x * inv`` with ``x * out == 0``.
    """
    def _hint(fr, values):
        v = values[0]
        return [0 if v == 0 else fr.inv(v)]

    (inv,) = builder.hint(_hint, [x], 1, label="inv")
    out = builder.one() - builder.mul(x, inv)
    out = builder.make_wire(out)
    builder.assert_mul(x, out, builder.constant(0))
    return out


def is_equal(builder, a, b):
    """Return a signal that is 1 iff ``a == b``."""
    return is_zero(builder, a - b)


def less_than(builder, a, b, n_bits):
    """Return a signal that is 1 iff ``a < b`` for *n_bits*-wide values.

    Standard trick: decompose ``a - b + 2^n`` into ``n+1`` bits; the top bit
    is 1 exactly when no borrow occurred (``a >= b``), so the output is its
    complement.  Callers must ensure both operands fit in *n_bits*.
    """
    shifted = a - b + (1 << n_bits)
    bits = num_to_bits(builder, shifted, n_bits + 1)
    return builder.one() - bits[n_bits]


def mux(builder, selector, if_one, if_zero):
    """Return ``if_one`` when ``selector == 1`` else ``if_zero``.

    The selector must already be constrained boolean.
    """
    return builder.mul(selector, if_one - if_zero) + if_zero


def logical_and(builder, a, b):
    """Boolean AND (operands must be boolean)."""
    return builder.mul(a, b)


def logical_or(builder, a, b):
    """Boolean OR (operands must be boolean)."""
    return a + b - builder.mul(a, b)


def logical_xor(builder, a, b):
    """Boolean XOR (operands must be boolean)."""
    return a + b - builder.mul(a, b).scale(2)


def logical_not(builder, a):
    """Boolean NOT (operand must be boolean)."""
    return builder.one() - a


#: Default number of MiMC rounds; enough to make the permutation interesting
#: as a workload while keeping example circuits small.
MIMC_ROUNDS = 16


def _mimc_constants(fr, n_rounds, seed=0x6D696D63):  # "mimc"
    """Deterministic round constants derived by squaring a seed."""
    out = []
    c = seed % fr.modulus
    for _ in range(n_rounds):
        c = (c * c + 7) % fr.modulus
        out.append(c)
    return out


def mimc_permutation(builder, x, key, n_rounds=MIMC_ROUNDS):
    """A MiMC-like cubing permutation: ``x -> (x + key + c_i)^3`` per round.

    Each round costs two multiplication constraints (square then cube).
    """
    constants = _mimc_constants(builder.fr, n_rounds)
    acc = x
    for c in constants:
        t = acc + key + c
        sq = builder.mul(t, t)
        acc = builder.mul(sq, t)
    return acc + key


def mimc_hash_chain(builder, values, key=None):
    """Miyaguchi–Preneel-style chain of :func:`mimc_permutation` over
    *values*; returns the chain digest signal."""
    if key is None:
        key = builder.constant(0)
    acc = builder.constant(0)
    for v in values:
        acc = mimc_permutation(builder, v, acc + key) + v
    return acc


def assert_nonzero(builder, x):
    """Constrain ``x != 0`` (via the existence of an inverse hint)."""
    def _hint(fr, values):
        v = values[0]
        return [fr.inv(v) if v else 0]

    (inv,) = builder.hint(_hint, [x], 1, label="nzinv")
    builder.assert_mul(x, inv, builder.one())


def divide(builder, num, den):
    """Return ``num / den`` as a signal; constrains ``den != 0``.

    The quotient is produced by a hint and pinned down with
    ``q * den == num`` plus the non-zero check on the denominator.
    """
    def _hint(fr, values):
        n, d = values
        return [fr.mul(n, fr.inv(d)) if d else 0]

    (q,) = builder.hint(_hint, [num, den], 1, label="quot")
    assert_nonzero(builder, den)
    builder.assert_mul(q, den, num)
    return q


def select(builder, index, options, n_bits=None):
    """Array lookup: return ``options[index]`` for a signal index.

    Builds a one-hot selector from :func:`is_equal` per option — O(k)
    constraints for k options — and constrains the index to be in range
    (the one-hot selectors must sum to 1).
    """
    if not options:
        raise ValueError("select needs at least one option")
    acc = builder.constant(0)
    onehot_sum = builder.constant(0)
    for i, opt in enumerate(options):
        hit = is_equal(builder, index, builder.constant(i))
        onehot_sum = onehot_sum + hit
        acc = acc + builder.mul(hit, opt)
    builder.assert_equal(onehot_sum, builder.constant(1))
    return acc


def dot_product(builder, xs, ys):
    """Inner product of two equal-length signal vectors (len(xs) gates)."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    acc = builder.constant(0)
    for a, b in zip(xs, ys):
        acc = acc + builder.mul(a, b)
    return acc

"""The *compile* stage: lower an authored circuit into R1CS.

This mirrors circom's pipeline — walk the gate list, normalize coefficients,
emit the sparse constraint matrices, and serialize them into an ``.r1cs``-
shaped byte buffer.  The instrumentation reproduces the stage's signature
from the paper: allocation-heavy (``malloc`` ~12% of CPU time), copy-heavy
(``memcpy`` ~8%), data-flow-intensive overall (Table V), with only a modest
parallelizable fraction (~34-42%, Table VI — the traversal and serialization
are inherently sequential; only per-constraint normalization fans out).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.r1cs import R1CS, Constraint
from repro.perf import trace

__all__ = ["CompiledCircuit", "compile_circuit"]

#: Bytes per serialized (wire index, coefficient) entry: 4-byte index plus a
#: 32-byte field element, circom's .r1cs layout.
_ENTRY_BYTES = 36

#: Modeled size of the compiler image + elaborated template structures the
#: startup phase touches (circom is a multi-MB Rust binary; only part of it
#: is hot).
_COMPILER_IMAGE_BYTES = 192 * 1024

#: Modeled AST/gate-graph heap the traversal pointer-chases across.  Sized
#: so the dependent walks miss the (scaled) LLC on every machine — the
#: pointer-chasing back-end-boundness circom shows on the i5/i9 (Fig. 4).
_AST_HEAP_BYTES = 2 * 1024 * 1024

#: Fixed front-of-compiler work (lexing, parsing, type checking, template
#: elaboration) in bulk primitives.  Volumes calibrated against the paper's
#: Table IV compile-stage hotspot shares (malloc ~12%, memcpy ~8%,
#: bigint ~5%).  These are op-only costs: the structures involved are small
#: and cache-resident, so they contribute instructions, not LLC traffic.
_STARTUP_OPS = (
    ("graph_walk", 420_000),
    ("malloc", 14_000),
    ("malloc_page", 7_000),
    ("memcpy", 34_000),
    ("bigint_mul_4", 5_200),
    ("json_parse_field", 2_000),
)

#: Per-constraint simplification work (op-only, same reasoning as above).
_PER_CONSTRAINT_OPS = (
    ("graph_walk", 640),
    ("malloc", 28),
    ("memcpy", 72),
    ("bigint_mul_4", 12),
)


@dataclass
class CompiledCircuit:
    """The compile stage's output: constraints plus the witness recipe.

    ``program`` is the straight-line witness-generation program (the role of
    circom's emitted WASM module); the witness stage interprets it.
    """

    name: str
    r1cs: R1CS
    program: list
    input_wires: dict
    output_wires: dict

    @property
    def n_constraints(self):
        return self.r1cs.n_constraints

    def public_input_names(self):
        pub = set(self.r1cs.public_wires)
        return [n for n, w in self.input_wires.items() if w in pub]

    def private_input_names(self):
        pub = set(self.r1cs.public_wires)
        return [n for n, w in self.input_wires.items() if w not in pub]

    def __repr__(self):
        return f"CompiledCircuit({self.name}, {self.r1cs!r})"


def compile_circuit(builder, check=False):
    """Lower a :class:`~repro.circuit.dsl.CircuitBuilder` into a
    :class:`CompiledCircuit` (the workflow's *compile* stage).

    Pure function of the builder's recorded gates; when a tracer is active
    the stage's characteristic work (traversal, normalization, matrix
    assembly, serialization) is reported region by region.

    With ``check=True`` the compiled circuit is run through the static
    analyzer (:func:`repro.analyze.analyze`) and a
    :class:`~repro.analyze.CircuitAnalysisError` is raised on any
    error-severity diagnostic — e.g. an under-constrained output or an
    unsatisfiable constant row.
    """
    t = trace.CURRENT
    fr = builder.fr
    if t is None:
        constraints = [
            Constraint(_normalize(fr, a), _normalize(fr, b), _normalize(fr, c))
            for a, b, c in builder.constraints
        ]
        r1cs = R1CS(fr, builder.n_wires, builder.public_wires, constraints, builder.labels)
        return _finish(CompiledCircuit(
            name=builder.name,
            r1cs=r1cs,
            program=list(builder.program),
            input_wires=dict(builder.input_wires),
            output_wires=dict(builder.output_wires),
        ), check)

    # -- traced path: same result, with the stage's workload made visible ----
    constraints = []
    with t.region("compile_startup", parallel=False):
        # Compiler initialization: binary load, source parse, template
        # elaboration — the fixed cost every circom invocation pays.
        binary = t.malloc(_COMPILER_IMAGE_BYTES)
        t.stream(binary, _COMPILER_IMAGE_BYTES, ticks_per_kb=32, op_name="graph_walk")
        for prim, n in _STARTUP_OPS:
            t.op(prim, n)
        t.op("json_parse_field", 64 + len(builder.input_wires) * 4)
        t.page_fault(1 + _COMPILER_IMAGE_BYTES // 16384)

    ast_heap = t.malloc(_AST_HEAP_BYTES)
    with t.region("compile_traverse", parallel=False):
        # Gate-graph traversal: pointer chasing across the AST heap.
        for j, (a, b, c) in enumerate(builder.constraints):
            t.op("graph_walk", 1 + len(a) + len(b) + len(c))
            # Dependent pointer hops per constraint, scattered over the
            # heap (Fibonacci hashing gives a uniform-but-deterministic walk).
            for hop in range(2):
                t.mem_load(ast_heap + ((2 * j + hop) * 2654435761) % _AST_HEAP_BYTES, 48)

    with t.region("compile_normalize", parallel=True, items=len(builder.constraints)):
        # Constraint simplification/normalization — circom's per-constraint
        # bulk work, and the stage's parallelizable fraction (Table VI).
        for a, b, c in builder.constraints:
            for prim, n in _PER_CONSTRAINT_OPS:
                t.op(prim, n)
            na = _normalize(fr, a, traced=True)
            nb = _normalize(fr, b, traced=True)
            nc = _normalize(fr, c, traced=True)
            constraints.append(Constraint(na, nb, nc))

    with t.region("compile_assemble", parallel=False):
        # Sparse-matrix assembly: one allocation per row triple plus a copy
        # of every entry into the matrix arena.
        arena = t.malloc(_ENTRY_BYTES * max(_nnz(constraints), 1))
        offset = 0
        for cons in constraints:
            row_bytes = _ENTRY_BYTES * (len(cons.a) + len(cons.b) + len(cons.c))
            t.malloc(row_bytes + 48)
            t.memcpy(arena + offset, arena + offset, max(row_bytes, 1))
            offset += row_bytes

    with t.region("compile_serialize", parallel=False):
        # .r1cs emission: read the arena, write the output buffer.
        total = _ENTRY_BYTES * max(_nnz(constraints), 1)
        out = t.malloc(total)
        t.stream(arena, total, ticks_per_kb=40, op_name="memcpy_chunk")
        t.stream(out, total, write=True, ticks_per_kb=40, op_name="memcpy_chunk")
        t.page_fault(1 + total // 4096)

    r1cs = R1CS(fr, builder.n_wires, builder.public_wires, constraints, builder.labels)
    return _finish(CompiledCircuit(
        name=builder.name,
        r1cs=r1cs,
        program=list(builder.program),
        input_wires=dict(builder.input_wires),
        output_wires=dict(builder.output_wires),
    ), check)


def _finish(compiled, check):
    """Optionally gate the compile on a clean static-analysis report."""
    if check:
        # Imported here: repro.analyze is a consumer of this module's types.
        from repro.analyze import CircuitAnalysisError, analyze

        report = analyze(compiled)
        if report.has_errors:
            raise CircuitAnalysisError(report)
    return compiled


def _normalize(fr, row, traced=False):
    """Reduce every coefficient into canonical range, dropping zeros.

    Traced cost: one Montgomery-form conversion multiply plus a reduction
    add per nonzero coefficient (what circom's field writer performs)."""
    t = trace.CURRENT if traced else None
    out = {}
    for wire, coeff in row.items():
        if t is not None:
            t.op(f"bigint_mul_{fr.limbs}")
            t.op(f"bigint_add_{fr.limbs}")
        coeff %= fr.modulus
        if coeff:
            out[wire] = coeff
    return out


def _nnz(constraints):
    return sum(len(c.a) + len(c.b) + len(c.c) for c in constraints)

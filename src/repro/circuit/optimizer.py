"""R1CS simplification (circom's ``--O1``-style post-compile pass).

Three sound transformations over a compiled circuit:

1. **tautology elimination** — constraints whose three sides are constants
   satisfying ``a*b == c`` hold for every witness and are dropped
   (a violated constant constraint raises instead: the circuit is
   unsatisfiable and compiling it further is a bug);
2. **duplicate elimination** — structurally identical constraints are
   kept once;
3. **wire compaction** — wires referenced by no constraint, no input, no
   output and no public declaration are removed and the remaining wires
   renumbered, shrinking every downstream key and the witness vector.

The witness program is remapped alongside, so
:func:`repro.groth16.witness.generate_witness` keeps working on the
optimized circuit.  Returns the new circuit plus an
:class:`OptimizationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.redundancy import DUPLICATE, TAUTOLOGY, UNSATISFIABLE, scan_redundancy
from repro.circuit.compiler import CompiledCircuit
from repro.circuit.r1cs import R1CS, Constraint

__all__ = ["OptimizationReport", "optimize"]


@dataclass(frozen=True)
class OptimizationReport:
    """What the pass removed."""

    tautologies_removed: int
    duplicates_removed: int
    wires_removed: int
    constraints_before: int
    constraints_after: int
    wires_before: int
    wires_after: int

    @property
    def changed(self):
        return (self.tautologies_removed or self.duplicates_removed
                or self.wires_removed)


def optimize(circuit):
    """Return ``(optimized_circuit, report)`` for a
    :class:`~repro.circuit.compiler.CompiledCircuit`."""
    r1cs = circuit.r1cs
    fr = r1cs.fr

    # -- pass 1+2: drop tautologies and duplicates ---------------------------
    # Classification is shared with the static analyzer
    # (repro.analyze.redundancy); this pass only decides what to do with
    # each classified row.
    redundant = {}
    for idx, kind in scan_redundancy(fr, r1cs.constraints):
        if kind == UNSATISFIABLE:
            raise ValueError(
                f"constraint {idx} is constant and violated; "
                f"the circuit is unsatisfiable"
            )
        redundant[idx] = kind
    kept = []
    tautologies = duplicates = 0
    for idx, cons in enumerate(r1cs.constraints):
        kind = redundant.get(idx)
        if kind == TAUTOLOGY:
            tautologies += 1
            continue
        if kind == DUPLICATE:
            duplicates += 1
            continue
        kept.append(cons)

    # -- pass 3: wire compaction ------------------------------------------------
    used = {0}
    used.update(r1cs.public_wires)
    used.update(circuit.input_wires.values())
    used.update(circuit.output_wires.values())
    for cons in kept:
        used.update(cons.wires())
    # The witness program may compute intermediates other steps consume.
    for step in circuit.program:
        if step[0] == "mul":
            _, fa, fb, out = step
            if out in used:
                used.update(w for w, _ in fa[0])
                used.update(w for w, _ in fb[0])
        else:
            _, _fn, frozen_ins, outs = step
            if any(o in used for o in outs):
                for fz in frozen_ins:
                    used.update(w for w, _ in fz[0])
                used.update(outs)
    # Fixed point: hint/mul inputs may transitively enable more wires.
    changed = True
    while changed:
        changed = False
        for step in circuit.program:
            if step[0] == "mul":
                _, fa, fb, out = step
                if out in used:
                    for w, _ in fa[0] + fb[0]:
                        if w not in used:
                            used.add(w)
                            changed = True
            else:
                _, _fn, frozen_ins, outs = step
                if any(o in used for o in outs):
                    for fz in frozen_ins:
                        for w, _ in fz[0]:
                            if w not in used:
                                used.add(w)
                                changed = True
                    for o in outs:
                        if o not in used:
                            used.add(o)
                            changed = True

    remap = {}
    for old in sorted(used):
        remap[old] = len(remap)

    def _map_row(row):
        return {remap[w]: c for w, c in row.items()}

    def _map_frozen(fz):
        terms, const = fz
        return (tuple((remap[w], c) for w, c in terms), const)

    new_constraints = [
        Constraint(_map_row(c.a), _map_row(c.b), _map_row(c.c)) for c in kept
    ]
    new_program = []
    for step in circuit.program:
        if step[0] == "mul":
            _, fa, fb, out = step
            if out in used:
                new_program.append(("mul", _map_frozen(fa), _map_frozen(fb),
                                    remap[out]))
        else:
            _, fn, frozen_ins, outs = step
            if any(o in used for o in outs):
                new_program.append(
                    ("hint", fn, [_map_frozen(fz) for fz in frozen_ins],
                     [remap[o] for o in outs])
                )

    new_r1cs = R1CS(
        fr,
        n_wires=len(remap),
        public_wires=[remap[w] for w in r1cs.public_wires],
        constraints=new_constraints,
        labels={remap[w]: name for w, name in r1cs.labels.items() if w in used},
    )
    optimized = CompiledCircuit(
        name=circuit.name,
        r1cs=new_r1cs,
        program=new_program,
        input_wires={n: remap[w] for n, w in circuit.input_wires.items()},
        output_wires={n: remap[w] for n, w in circuit.output_wires.items()},
    )
    report = OptimizationReport(
        tautologies_removed=tautologies,
        duplicates_removed=duplicates,
        wires_removed=r1cs.n_wires - len(remap),
        constraints_before=r1cs.n_constraints,
        constraints_after=len(new_constraints),
        wires_before=r1cs.n_wires,
        wires_after=len(remap),
    )
    return optimized, report

"""Poseidon-style sponge permutation gadget.

Poseidon is the de-facto ZK-native hash (Zcash/Filecoin circuits): an
x^5 S-box, an MDS matrix mix, and a full/partial round structure chosen so
the constraint count stays low — each x^5 costs just two multiplication
gates, and partial rounds apply the S-box to a single lane.

This implementation keeps the structure (t-lane state, R_F full + R_P
partial rounds, per-round constants, fixed MDS matrix) with parameters
derived deterministically from the field, rather than the official
instance sets — it is a workload-faithful, collision-resistant-*looking*
permutation for circuits and benchmarks, not a drop-in for the audited
parameterizations (documented limitation).
"""

from __future__ import annotations

__all__ = ["PoseidonParams", "poseidon_permutation", "poseidon_hash",
           "poseidon_hash_native"]

#: Default width (capacity 1 + rate 2) and round numbers; R_F/R_P follow
#: the shape of the published 128-bit instances for t = 3.
DEFAULT_T = 3
DEFAULT_FULL_ROUNDS = 8
DEFAULT_PARTIAL_ROUNDS = 22


class PoseidonParams:
    """Round constants and MDS matrix for one field/width instance."""

    def __init__(self, fr, t=DEFAULT_T, full_rounds=DEFAULT_FULL_ROUNDS,
                 partial_rounds=DEFAULT_PARTIAL_ROUNDS):
        if t < 2:
            raise ValueError(f"state width must be >= 2, got {t}")
        if full_rounds % 2:
            raise ValueError("full rounds must be even (half before, half after)")
        self.fr = fr
        self.t = t
        self.full_rounds = full_rounds
        self.partial_rounds = partial_rounds
        n_rounds = full_rounds + partial_rounds
        self.round_constants = self._derive_constants(n_rounds * t)
        self.mds = self._derive_mds()

    def _derive_constants(self, count, seed=0x706F736569646F6E):  # "poseidon"
        out = []
        fr = self.fr
        c = seed % fr.modulus
        for _ in range(count):
            c = (c * c + 13) % fr.modulus
            out.append(c)
        return out

    def _derive_mds(self):
        """A Cauchy matrix ``1 / (x_i + y_j)`` — invertible and MDS."""
        fr = self.fr
        xs = list(range(1, self.t + 1))
        ys = list(range(self.t + 1, 2 * self.t + 1))
        return [
            [fr.inv((x + y) % fr.modulus) for y in ys]
            for x in xs
        ]


def _native_sbox(fr, x):
    x2 = fr.sqr(x)
    return fr.mul(fr.sqr(x2), x)


def poseidon_permutation_native(params, state):
    """Reference (out-of-circuit) permutation on a list of ints."""
    fr = params.fr
    t = params.t
    state = [s % fr.modulus for s in state]
    if len(state) != t:
        raise ValueError(f"state width {len(state)} != {t}")
    half = params.full_rounds // 2
    rc = iter(params.round_constants)
    for rnd in range(params.full_rounds + params.partial_rounds):
        state = [fr.add(s, next(rc)) for s in state]
        if half <= rnd < half + params.partial_rounds:
            state[0] = _native_sbox(fr, state[0])  # partial round
        else:
            state = [_native_sbox(fr, s) for s in state]
        state = [
            _dot(fr, row, state) for row in params.mds
        ]
    return state


def _dot(fr, row, state):
    acc = 0
    for coef, s in zip(row, state):
        acc = fr.add(acc, fr.mul(coef, s))
    return acc


def _circuit_sbox(builder, sig):
    """x^5 in two multiplication gates."""
    x2 = builder.mul(sig, sig)
    x4 = builder.mul(x2, x2)
    return builder.mul(x4, sig)


def poseidon_permutation(builder, state, params=None):
    """In-circuit permutation over a list of signals."""
    params = params or PoseidonParams(builder.fr)
    if len(state) != params.t:
        raise ValueError(f"state width {len(state)} != {params.t}")
    half = params.full_rounds // 2
    rc = iter(params.round_constants)
    for rnd in range(params.full_rounds + params.partial_rounds):
        state = [s + next(rc) for s in state]
        if half <= rnd < half + params.partial_rounds:
            state = [_circuit_sbox(builder, state[0])] + state[1:]
        else:
            state = [_circuit_sbox(builder, s) for s in state]
        state = [
            _lincomb(builder, row, state) for row in params.mds
        ]
    return state


def _lincomb(builder, row, state):
    acc = builder.constant(0)
    for coef, s in zip(row, state):
        acc = acc + s.scale(coef)
    return acc


def poseidon_hash(builder, inputs, params=None):
    """Sponge hash of a list of signals (rate ``t - 1``, capacity 1)."""
    params = params or PoseidonParams(builder.fr)
    rate = params.t - 1
    state = [builder.constant(0) for _ in range(params.t)]
    for chunk_start in range(0, max(len(inputs), 1), rate):
        chunk = inputs[chunk_start: chunk_start + rate]
        for i, sig in enumerate(chunk):
            state[1 + i] = state[1 + i] + sig
        state = poseidon_permutation(builder, state, params)
    return state[1]


def poseidon_hash_native(fr, values, params=None):
    """Reference hash on plain ints — must agree with the circuit."""
    params = params or PoseidonParams(fr)
    rate = params.t - 1
    state = [0] * params.t
    values = [v % fr.modulus for v in values]
    for chunk_start in range(0, max(len(values), 1), rate):
        chunk = values[chunk_start: chunk_start + rate]
        for i, v in enumerate(chunk):
            state[1 + i] = fr.add(state[1 + i], v)
        state = poseidon_permutation_native(params, state)
    return state[1]

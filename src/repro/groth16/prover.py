"""The *proving* stage: generate a Groth16 proof.

The pipeline — stream the proving key, build the quotient ``h`` with the
NTT round trip, then five multi-scalar multiplications — is the workload
whose fingerprint dominates the paper's findings:

- highest peak memory bandwidth of any stage (25 GB/s, Table III): the
  zkey stream plus the NTT passes;
- ~100x the witness stage's loads (Fig. 5);
- the most *parallel* heavy stage (~72% parallel, Table VI): NTT passes
  and MSM windows fan out; only key parsing and proof assembly are serial;
- >30% data-movement instructions (Key Takeaway 4).
"""

from __future__ import annotations

from repro.groth16.keys import Proof
from repro.obs import metrics
from repro.perf import trace
from repro.poly.domain import EvaluationDomain
from repro.qap.qap import compute_h
from repro.resilience.degrade import resilient_msm

__all__ = ["prove"]


def prove(pk, circuit, witness, rng):
    """Produce a proof that *witness* satisfies *circuit*.

    Parameters
    ----------
    pk:
        The :class:`~repro.groth16.keys.ProvingKey` from setup.
    circuit:
        The matching :class:`~repro.circuit.compiler.CompiledCircuit`.
    witness:
        Full witness vector from
        :func:`~repro.groth16.witness.generate_witness`.
    rng:
        Source of the zero-knowledge blinding scalars ``r, s``.

    Raises
    ------
    ValueError
        If the witness does not satisfy the constraint system.
    """
    curve = pk.curve
    fr = curve.fr
    r1cs = circuit.r1cs
    t = trace.CURRENT
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_groth16_prove_total")
        m.observe("repro_groth16_prove_constraints", r1cs.n_constraints)

    domain = EvaluationDomain(fr, pk.domain_size)

    if t is not None:
        # Stream the zkey: every query section is read once up front
        # (snarkjs mmaps the sections; the read is a near-memcpy-speed
        # sequential sweep — the stage's 25 GB/s peak in Table III).
        with t.region("prove_load_zkey", parallel=False):
            size = pk.size_bytes()
            buf = t.malloc(size)
            t.stream(buf, size, ticks_per_kb=9)
            t.page_fault(1 + size // 4096)
            # Representation conversion passes (Montgomery <-> affine) over
            # the loaded sections: cache-resident copies, reported op-only.
            t.op("memcpy", 1 + size // 8192)
            t.op("memcpy_chunk", (4 * size) // 16)

    # -- quotient polynomial (NTT pipeline; regions reported inside) --------
    h = compute_h(r1cs, witness, domain)

    r = fr.rand(rng)
    s = fr.rand(rng)

    # -- multi-scalar multiplications ------------------------------------------
    a_aff = [p.to_affine() for p in pk.a_query]
    b1_aff = [p.to_affine() for p in pk.b1_query]
    b2_aff = [p.to_affine() for p in pk.b2_query]
    l_wires = sorted(pk.l_query)
    l_aff = [pk.l_query[i].to_affine() for i in l_wires]
    l_scalars = [witness[i] for i in l_wires]
    h_aff = [p.to_affine() for p in pk.h_query]

    def _msms():
        # resilient_msm: Pippenger, degrading to the naive kernel on a
        # transient kernel fault (docs/ROBUSTNESS.md).
        a_sum = resilient_msm(curve.g1, a_aff, witness)
        b1_sum = resilient_msm(curve.g1, b1_aff, witness)
        b2_sum = resilient_msm(curve.g2, b2_aff, witness)
        l_sum = resilient_msm(curve.g1, l_aff, l_scalars)
        h_sum = resilient_msm(curve.g1, h_aff, h)
        return a_sum, b1_sum, b2_sum, l_sum, h_sum

    if t is None:
        a_sum, b1_sum, b2_sum, l_sum, h_sum = _msms()
    else:
        with t.region("prove_msm", parallel=True, items=4 * len(a_aff) + len(h_aff)):
            a_sum, b1_sum, b2_sum, l_sum, h_sum = _msms()

    # -- proof assembly (serial tail) -----------------------------------------------
    def _assemble():
        A = pk.alpha1 + a_sum + pk.delta1 * r
        B2 = pk.beta2 + b2_sum + pk.delta2 * s
        B1 = pk.beta1 + b1_sum + pk.delta1 * s
        C = (
            l_sum
            + h_sum
            + A * s
            + B1 * r
            - pk.delta1 * (fr.mul(r, s))
        )
        return Proof(curve=curve, a=A.normalize(), b=B2.normalize(), c=C.normalize())

    if t is None:
        return _assemble()
    with t.region("prove_assemble", parallel=False):
        proof = _assemble()
        t.memcpy(t.malloc(proof.size_bytes()), 0, proof.size_bytes())
        return proof

"""Batch verification of Groth16 proofs.

A server verifying a stream of proofs (the paper's motivating "millions of
transactions" scenario) need not pay four Miller loops per proof: with
random weights ``r_i`` the per-proof equations

    ``e(A_i, B_i) = e(alpha, beta) * e(L_i, gamma) * e(C_i, delta)``

fold into one product check whose gamma/delta legs collapse into single
pairings of pre-combined G1 points:

    ``prod_i e(r_i * A_i, B_i)
      * e(-sum_i r_i * L_i, gamma)
      * e(-sum_i r_i * C_i, delta)
      * e(-(sum r_i) * alpha, beta)  == 1``

— ``k + 3`` Miller loops and **one** final exponentiation for ``k``
proofs, versus ``4k`` Miller loops and ``k`` final exponentiations
individually.  The random weights make accepting any invalid proof in the
batch as hard as a single forgery (a bad proof survives only if its error
term is annihilated by the random ``r_i``).
"""

from __future__ import annotations

from repro.curves.pairing import PairingEngine
from repro.obs import metrics

__all__ = ["batch_verify"]

_ENGINES = {}


def _engine(curve):
    eng = _ENGINES.get(curve.name)
    if eng is None:
        eng = PairingEngine(curve)
        # codelint: ignore[RC103] -- per-process engine memo, keyed by curve
        _ENGINES[curve.name] = eng
    return eng


def batch_verify(vk, proofs_with_publics, rng):
    """Verify many proofs against one verifying key in a single check.

    Parameters
    ----------
    vk:
        The shared :class:`~repro.groth16.keys.VerifyingKey`.
    proofs_with_publics:
        Iterable of ``(proof, publics)`` pairs, *publics* as accepted by
        :func:`repro.groth16.verifier.verify`.
    rng:
        Source of the batching weights; must be unpredictable to the
        prover (use a fresh system RNG in production).

    Returns True iff **every** proof in the batch is valid.  An empty
    batch is vacuously valid.
    """
    batch = list(proofs_with_publics)
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_groth16_batch_verify_total")
        m.observe("repro_groth16_batch_size", len(batch))
        m.inc("repro_groth16_batch_pairings_total", len(batch) + 3 if batch else 0)
    if not batch:
        return True
    # Fan large batches out through the worker pool (chunked folded
    # checks with independent weight seeds) when one is installed.
    from repro.parallel.pool import active_pool

    pool = active_pool()
    if pool is not None and pool.enabled_for(len(batch), "batch"):
        from repro.parallel.kernels import batch_verify_parallel

        return batch_verify_parallel(vk, batch, rng, pool)
    curve = vk.curve
    fr = curve.fr
    g1 = curve.g1

    pairs = []
    sum_r = 0
    acc_l = g1.infinity()
    acc_c = g1.infinity()
    for proof, publics in batch:
        if len(publics) != len(vk.ic) - 1:
            raise ValueError(
                f"expected {len(vk.ic) - 1} public inputs, got {len(publics)}"
            )
        # 128-bit weights keep the folding cheap without weakening the check.
        r = rng.getrandbits(128) | 1
        sum_r = fr.add(sum_r, r % fr.modulus)
        vk_x = vk.ic[0]
        for coeff, point in zip(publics, vk.ic[1:]):
            vk_x = vk_x + point * (coeff % fr.modulus)
        pairs.append((proof.a * r, proof.b))
        acc_l = acc_l + vk_x * r
        acc_c = acc_c + proof.c * r

    pairs.append((-(vk.alpha1 * sum_r), vk.beta2))
    pairs.append((-acc_l, vk.gamma2))
    pairs.append((-acc_c, vk.delta2))
    return _engine(curve).pairing_check(pairs)

"""The *witness* stage: evaluate the circuit on concrete inputs.

snarkjs generates witnesses by instantiating the WASM calculator circom
emitted and interpreting it.  Our equivalent interprets the compiled
circuit's straight-line witness program.  The instrumentation reproduces
the stage's fingerprint from the paper:

- a large **fixed** initialization cost (module load + instantiation),
  which is why Fig. 5 shows near-constant loads/stores across constraint
  sizes and why the verifying/witness execution times barely move;
- **control-flow-intensive** execution (Table V): interpreter dispatch is
  one indirect branch per step;
- the **highest LLC MPKI** of all stages (Table II, up to 1.03): the
  dispatch loop hops between the module image, the interpreter tables and
  the signal arena with poor locality.
"""

from __future__ import annotations

from repro.perf import trace

__all__ = ["generate_witness", "public_inputs", "WitnessError"]

#: Modeled size of the instantiated calculator module (code + tables).  The
#: snarkjs witness calculator WASM for mid-size circuits is a few MiB; the
#: value only needs to dwarf the per-gate footprint, as it does in reality.
_MODULE_BYTES = 1 << 20

#: Interpreter work per module kilobyte during instantiation.  Split into a
#: serial part (load, relocation, dispatch-table build) and a parallel part
#: (validation/baseline compilation — V8 runs these on background threads),
#: which is what gives the witness stage its partial strong scaling
#: (Table VI) despite the near-constant execution time (Fig. 5/6).
_INIT_SERIAL_OPS_PER_KB = 800
_INIT_PARALLEL_OPS_PER_KB = 1200


class WitnessError(ValueError):
    """Raised when inputs are missing/unknown or a hint fails."""


def _eval_frozen(fr, frozen, signals):
    """Evaluate a frozen linear combination against the signal arena.

    Uses the field's lazy-reduction accumulator: one deferred reduction
    per combination instead of one per term.
    """
    terms, const = frozen
    return fr.lincomb(((coeff, signals[wire]) for wire, coeff in terms), const)


def generate_witness(circuit, inputs):
    """Compute the full witness vector for *circuit* from named *inputs*.

    Parameters
    ----------
    circuit:
        A :class:`~repro.circuit.compiler.CompiledCircuit`.
    inputs:
        ``{name: int}`` covering **every** declared input (public and
        private).  Values are reduced into the scalar field.

    Returns
    -------
    list[int]
        The witness vector ``z`` with ``z[0] == 1``, indexed by wire.

    Raises
    ------
    WitnessError
        On missing or unknown input names.
    """
    fr = circuit.r1cs.fr
    t = trace.CURRENT

    missing = sorted(set(circuit.input_wires) - set(inputs))
    if missing:
        raise WitnessError(f"missing inputs: {missing}")
    unknown = sorted(set(inputs) - set(circuit.input_wires))
    if unknown:
        raise WitnessError(f"unknown inputs: {unknown}")

    signals = [0] * circuit.r1cs.n_wires
    signals[0] = 1

    arena_base = 0
    sample = 1
    if t is not None:
        # -- module instantiation: the stage's big fixed cost ----------------
        module = t.malloc(_MODULE_BYTES)
        with t.region("witness_wasm_load", parallel=False):
            # Read + relocate the module image (slow, instruction-dense).
            t.stream(module, _MODULE_BYTES, ticks_per_kb=96, op_name="wasm_validate")
            t.op("wasm_validate", (_MODULE_BYTES // 1024) * _INIT_SERIAL_OPS_PER_KB)
            t.page_fault(1 + _MODULE_BYTES // 4096)
        with t.region("witness_wasm_compile", parallel=True,
                      items=_MODULE_BYTES // 4096):
            # Validation + baseline compile on V8's background threads.
            t.op("wasm_validate", (_MODULE_BYTES // 1024) * _INIT_PARALLEL_OPS_PER_KB)
        arena_base = t.malloc(len(signals) * 32)
        sample = t.mem_sample

    def _set_inputs():
        for name, wire in circuit.input_wires.items():
            signals[wire] = inputs[name] % fr.modulus

    def _run_program():
        for step_idx, step in enumerate(circuit.program):
            if t is not None:
                # One indirect-dispatch step per instruction, plus a hop
                # into the module image (poor locality by construction).
                t.op("wasm_dispatch")
                if step_idx % sample == 0:
                    t.mem_load(
                        arena_base + (step_idx * 2654435761 % (len(signals) or 1)) * 32,
                        32,
                        weight=sample,
                    )
            kind = step[0]
            if kind == "mul":
                _, fa, fb, out = step
                signals[out] = fr.mul(
                    _eval_frozen(fr, fa, signals), _eval_frozen(fr, fb, signals)
                )
            elif kind == "hint":
                _, fn, frozen_ins, outs = step
                values = [_eval_frozen(fr, fz, signals) for fz in frozen_ins]
                results = fn(fr, values)
                if len(results) != len(outs):
                    raise WitnessError(
                        f"hint at step {step_idx} returned {len(results)} values, "
                        f"expected {len(outs)}"
                    )
                for wire, val in zip(outs, results):
                    signals[wire] = val % fr.modulus
            else:  # pragma: no cover - program steps are built by the DSL
                raise WitnessError(f"unknown witness program step {kind!r}")

    if t is None:
        _set_inputs()
        # Level-scheduled parallel evaluation when a worker pool is
        # installed and the program is big enough; hints always run here
        # in the parent, so the results are exactly the serial ones.
        from repro.parallel.pool import active_pool

        pool = active_pool()
        if pool is not None and pool.enabled_for(len(circuit.program), "witness"):
            from repro.parallel.kernels import run_witness_program

            run_witness_program(circuit, fr, signals, pool)
        else:
            _run_program()
        return signals

    with t.region("witness_parse_inputs", parallel=False):
        for _ in circuit.input_wires:
            t.op("json_parse_field", 8)
        _set_inputs()

    with t.region("witness_eval", parallel=True, items=max(len(circuit.program), 1)):
        _run_program()

    with t.region("witness_write", parallel=False):
        # JSON/wtns emission is parse-and-format bound, not a raw copy.
        t.stream(arena_base, len(signals) * 32, write=True, ticks_per_kb=200,
                 op_name="json_parse_field")
        t.op("hash_block", 1 + len(signals) // 2)

    return signals


def public_inputs(circuit, witness):
    """Extract the verifier-visible values (constant wire excluded).

    Returns the values of ``r1cs.public_wires[1:]`` in order — the
    ``witnessPublic`` of the paper's Fig. 1.
    """
    return [witness[w] for w in circuit.r1cs.public_wires[1:]]

"""The *setup* stage: trusted-setup key generation.

Samples the toxic waste ``(tau, alpha, beta, gamma, delta)``, evaluates the
QAP columns at ``tau``, and commits everything into the proving/verifying
keys with fixed-base scalar multiplications.

Instrumented to match the stage's fingerprint in the paper:

- it is by far the most *expensive* stage (76.1% of total time) — the key
  material is linear in circuit size, with a G1+G2 multiplication per wire
  and per domain power;
- it is **load-dominated** (~10x more loads than stores, Fig. 5): the
  fixed-base tables and the accumulated key sections are re-read many times
  (window walks, consistency hash passes) but written once;
- its LLC MPKI is the *lowest* of all stages (Table II): the access pattern
  is streaming or small-table resident;
- its parallel fraction is modest (~31-59%, Table VI): the powers-of-tau
  chain, the ceremony transcript hashing and the zkey serialization are
  serial.
"""

from __future__ import annotations

from repro.groth16.keys import ProvingKey, VerifyingKey
from repro.msm.fixed_base import FixedBaseTable
from repro.perf import trace
from repro.qap.qap import column_evaluations_at, qap_domain

__all__ = ["setup"]


def setup(curve, circuit, rng, fixed_base_width=3):
    """Run the trusted setup for *circuit* on *curve*.

    Parameters
    ----------
    curve:
        A :class:`~repro.curves.curve.CurveSpec`.
    circuit:
        The :class:`~repro.circuit.compiler.CompiledCircuit` to set up.
    rng:
        A ``random.Random``; its five draws are the toxic waste.  Use a
        fresh, discarded generator in production settings.
    fixed_base_width:
        Window width for the fixed-base tables (see
        :class:`~repro.msm.fixed_base.FixedBaseTable`).

    Returns
    -------
    (ProvingKey, VerifyingKey)
    """
    fr = curve.fr
    r1cs = circuit.r1cs
    domain = qap_domain(r1cs)
    t = trace.CURRENT

    # -- toxic waste --------------------------------------------------------
    tau = fr.rand_nonzero(rng)
    alpha = fr.rand_nonzero(rng)
    beta = fr.rand_nonzero(rng)
    gamma = fr.rand_nonzero(rng)
    delta = fr.rand_nonzero(rng)

    # -- QAP columns at tau ---------------------------------------------------
    u, v, w = column_evaluations_at(r1cs, domain, tau)

    # -- scalar preparation (serial: snarkjs walks these chains in order) ----
    def _prepare_scalars():
        gamma_inv = fr.inv(gamma)
        delta_inv = fr.inv(delta)
        ic_scalars = [
            fr.mul(fr.add(fr.add(fr.mul(beta, u[i]), fr.mul(alpha, v[i])), w[i]), gamma_inv)
            for i in r1cs.public_wires
        ]
        priv = r1cs.private_wires()
        l_scalars = {
            i: fr.mul(fr.add(fr.add(fr.mul(beta, u[i]), fr.mul(alpha, v[i])), w[i]), delta_inv)
            for i in priv
        }
        # Powers-of-tau chain: inherently sequential.
        z_tau = domain.vanishing_at(tau)
        zd = fr.mul(z_tau, delta_inv)
        h_scalars = []
        power = 1
        for _ in range(domain.size - 1):
            h_scalars.append(fr.mul(power, zd))
            power = fr.mul(power, tau)
        return ic_scalars, l_scalars, h_scalars

    if t is None:
        ic_scalars, l_scalars, h_scalars = _prepare_scalars()
    else:
        with t.region("setup_prepare_scalars", parallel=False):
            ic_scalars, l_scalars, h_scalars = _prepare_scalars()

    # -- group commitments -------------------------------------------------------
    g1_table = FixedBaseTable(curve.g1.generator, width=fixed_base_width)
    g2_table = FixedBaseTable(curve.g2.generator, width=fixed_base_width)

    def _mul_many(table, scalars):
        """Table sweep, fanned out through the worker pool when one is
        installed (untraced runs only); the committed points serialize
        identically either way."""
        scalars = list(scalars)
        if t is None:
            from repro.parallel.pool import active_pool

            pool = active_pool()
            if pool is not None and pool.enabled_for(len(scalars), "msm"):
                from repro.parallel.kernels import fixed_base_mul_many

                return fixed_base_mul_many(table, scalars, pool)
        return table.mul_many(scalars)

    def _commit_g1():
        l_wires = list(l_scalars)
        l_points = _mul_many(g1_table, [l_scalars[i] for i in l_wires])
        return dict(
            alpha1=g1_table.mul(alpha),
            beta1=g1_table.mul(beta),
            delta1=g1_table.mul(delta),
            a_query=_mul_many(g1_table, u),
            b1_query=_mul_many(g1_table, v),
            l_query=dict(zip(l_wires, l_points)),
            h_query=_mul_many(g1_table, h_scalars),
            ic=_mul_many(g1_table, ic_scalars),
        )

    def _commit_g2():
        return dict(
            beta2=g2_table.mul(beta),
            delta2=g2_table.mul(delta),
            gamma2=g2_table.mul(gamma),
            b2_query=_mul_many(g2_table, v),
        )

    if t is None:
        g1_parts = _commit_g1()
        g2_parts = _commit_g2()
    else:
        with t.region("setup_g1_commitments", parallel=True,
                      items=4 * len(u) + len(h_scalars),
                      load_scale=2.0, store_scale=0.25):
            g1_parts = _commit_g1()
        # snarkjs builds the G2 section on the main thread (its wasmcurves
        # worker pool only covers the G1 batch paths) — the stage's big
        # serial block, and the main reason its Amdahl parallel fraction
        # sits near 50% rather than proving's ~72% (Table VI).
        with t.region("setup_g2_commitments", parallel=False,
                      load_scale=2.0, store_scale=0.25):
            g2_parts = _commit_g2()

    pk = ProvingKey(
        curve=curve,
        alpha1=g1_parts["alpha1"],
        beta1=g1_parts["beta1"],
        beta2=g2_parts["beta2"],
        delta1=g1_parts["delta1"],
        delta2=g2_parts["delta2"],
        a_query=g1_parts["a_query"],
        b1_query=g1_parts["b1_query"],
        b2_query=g2_parts["b2_query"],
        l_query=g1_parts["l_query"],
        h_query=g1_parts["h_query"],
        domain_size=domain.size,
    )
    vk = VerifyingKey(
        curve=curve,
        alpha1=pk.alpha1,
        beta2=pk.beta2,
        gamma2=g2_parts["gamma2"],
        delta2=pk.delta2,
        ic=g1_parts["ic"],
        public_wires=list(r1cs.public_wires),
    )

    if t is not None:
        # -- zkey serialization (serial): write the sections, then re-read
        # them for the transcript hashes snarkjs computes.  Fast streams:
        # this is where the stage's 23 GB/s peak (Table III) comes from. ----
        with t.region("setup_write_zkey", parallel=False):
            size = pk.size_bytes() + vk.size_bytes()
            buf = t.malloc(size)
            t.stream(buf, size, write=True, ticks_per_kb=12)   # section write
            t.stream(buf, size, ticks_per_kb=11)               # hash pass
            t.stream(buf, size, ticks_per_kb=11)               # verify read-back
            t.op("hash_block", 1 + size // 64)
            t.page_fault(1 + size // 4096)

    return pk, vk

"""Key and proof containers for Groth16.

Field layout follows the original paper (Groth, EUROCRYPT 2016) and
snarkjs' ``.zkey`` sections.  Points are stored as group ``Point`` objects;
``*_bytes`` helpers report serialized sizes so the instrumented stages can
model realistic key/proof traffic (the proving stage's dominant loads in
Fig. 5 are exactly the zkey stream).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProvingKey", "VerifyingKey", "Proof"]


def _point_bytes(group):
    """Serialized size of one affine point of *group* (uncompressed)."""
    if hasattr(group.ops, "fq"):
        return 2 * group.ops.fq.nbytes
    return 4 * group.ops.tower.fq.nbytes


@dataclass
class ProvingKey:
    """Everything the prover needs.

    ``a_query[i] = [u_i(tau)]_1``, ``b1_query[i] = [v_i(tau)]_1``,
    ``b2_query[i] = [v_i(tau)]_2`` for every wire ``i``;
    ``l_query`` covers private wires only
    (``[(beta*u_i + alpha*v_i + w_i)/delta]_1``), and
    ``h_query[k] = [tau^k * Z(tau)/delta]_1`` for ``k < n - 1``.
    """

    curve: object
    alpha1: object
    beta1: object
    beta2: object
    delta1: object
    delta2: object
    a_query: list
    b1_query: list
    b2_query: list
    l_query: dict  # private wire -> point
    h_query: list
    domain_size: int

    def size_bytes(self):
        """Approximate serialized size (the zkey payload the prover streams)."""
        g1 = _point_bytes(self.curve.g1)
        g2 = _point_bytes(self.curve.g2)
        n_g1 = (
            3  # alpha1, beta1, delta1
            + len(self.a_query)
            + len(self.b1_query)
            + len(self.l_query)
            + len(self.h_query)
        )
        n_g2 = 2 + len(self.b2_query)
        return n_g1 * g1 + n_g2 * g2

    def __repr__(self):
        return (
            f"ProvingKey({self.curve.name}, wires={len(self.a_query)}, "
            f"h={len(self.h_query)}, ~{self.size_bytes() // 1024} KiB)"
        )


@dataclass
class VerifyingKey:
    """The verifier's half: four constants plus one commitment per public wire.

    ``ic[k]`` corresponds to ``r1cs.public_wires[k]`` (wire 0 first).
    """

    curve: object
    alpha1: object
    beta2: object
    gamma2: object
    delta2: object
    ic: list
    public_wires: list

    def size_bytes(self):
        g1 = _point_bytes(self.curve.g1)
        g2 = _point_bytes(self.curve.g2)
        return (1 + len(self.ic)) * g1 + 3 * g2

    def __repr__(self):
        return f"VerifyingKey({self.curve.name}, public={len(self.ic)})"


@dataclass
class Proof:
    """A Groth16 proof: two G1 points and one G2 point.

    Constant size regardless of circuit — the succinctness the paper's
    Section II credits for zk-SNARK adoption (hundreds of bytes).
    """

    curve: object
    a: object
    b: object
    c: object

    def size_bytes(self):
        return 2 * _point_bytes(self.curve.g1) + _point_bytes(self.curve.g2)

    def __repr__(self):
        return f"Proof({self.curve.name}, {self.size_bytes()} bytes)"

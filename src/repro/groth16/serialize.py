"""Binary serialization of Groth16 keys and proofs.

A compact sectioned format in the spirit of snarkjs' ``.zkey`` /
``proof.json``: little-endian ``u32`` lengths, uncompressed affine points
(identity encoded as an all-zero coordinate pair, which is not a valid
curve point otherwise), and fixed-width field elements.  Deserialization
validates every point against the curve equation, so a corrupted or
malicious key fails loudly rather than producing garbage proofs.

Every rejection raises
:class:`~repro.resilience.errors.ArtifactCorruption` (a ``ValueError``
subclass) naming what was expected versus found — truncated and
oversized blobs included — and the small artifacts (proofs, verifying
keys, the proving key's header points) additionally get a subgroup check
(:meth:`~repro.curves.curve.Group.in_subgroup`): on-curve-but-wrong-
subgroup points are the classic malleability vector the curve equation
alone cannot catch.  The proving key's bulk query sections stay
equation-checked only — thousands of scalar multiplications per load
would dwarf the deserialization itself, and the prover's output is
verified downstream anyway.

The byte sizes produced here are exactly what
:meth:`repro.groth16.keys.ProvingKey.size_bytes` models for the traced
zkey streams.
"""

from __future__ import annotations

import struct

from repro.groth16.keys import Proof, ProvingKey, VerifyingKey
from repro.resilience import faults
from repro.resilience.errors import ArtifactCorruption

__all__ = [
    "proof_to_bytes", "proof_from_bytes",
    "vk_to_bytes", "vk_from_bytes",
    "pk_to_bytes", "pk_from_bytes",
]

_MAGIC_PROOF = b"RPRF"
_MAGIC_VK = b"RPVK"
_MAGIC_PK = b"RPPK"

_CURVE_IDS = {"bn128": 1, "bls12_381": 2}
_CURVE_BY_ID = {v: k for k, v in _CURVE_IDS.items()}


class _Writer:
    def __init__(self):
        self.parts = []

    def u32(self, v):
        self.parts.append(struct.pack("<I", v))

    def raw(self, b):
        self.parts.append(b)

    def bytes(self):
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data, artifact="blob"):
        self.data = data
        self.pos = 0
        self.artifact = artifact

    def u32(self):
        if self.pos + 4 > len(self.data):
            raise ArtifactCorruption(
                f"truncated {self.artifact}: u32 at offset {self.pos}",
                artifact=self.artifact,
                expected=f">= {self.pos + 4} bytes",
                actual=f"{len(self.data)} bytes",
            )
        (v,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return v

    def raw(self, n):
        if self.pos + n > len(self.data):
            raise ArtifactCorruption(
                f"truncated {self.artifact}: {n}-byte field at offset {self.pos}",
                artifact=self.artifact,
                expected=f">= {self.pos + n} bytes",
                actual=f"{len(self.data)} bytes",
            )
        out = self.data[self.pos: self.pos + n]
        self.pos += n
        return out

    def done(self):
        if self.pos != len(self.data):
            raise ArtifactCorruption(
                f"oversized {self.artifact}: "
                f"{len(self.data) - self.pos} trailing bytes",
                artifact=self.artifact,
                expected=f"{self.pos} bytes",
                actual=f"{len(self.data)} bytes",
            )


# -- point codecs ---------------------------------------------------------------


def _coord_bytes(group):
    if hasattr(group.ops, "fq"):
        return group.ops.fq.nbytes
    return 2 * group.ops.tower.fq.nbytes


def _write_point(w, group, point):
    nb = _coord_bytes(group)
    aff = point.to_affine()
    if aff is None:
        w.raw(b"\x00" * (2 * nb))
        return
    x, y = aff
    if hasattr(group.ops, "fq"):
        fq = group.ops.fq
        w.raw(fq.to_bytes(x))
        w.raw(fq.to_bytes(y))
    else:
        fq = group.ops.tower.fq
        for c in (*x, *y):
            w.raw(fq.to_bytes(c))


def _read_point(r, group, subgroup=False):
    nb = _coord_bytes(group)
    offset = r.pos
    blob = r.raw(2 * nb)
    if blob == b"\x00" * (2 * nb):
        return group.infinity()
    try:
        if hasattr(group.ops, "fq"):
            fq = group.ops.fq
            x = fq.from_bytes(blob[:nb])
            y = fq.from_bytes(blob[nb:])
        else:
            fq = group.ops.tower.fq
            half = nb // 2
            x = (fq.from_bytes(blob[:half]), fq.from_bytes(blob[half: 2 * half]))
            y = (fq.from_bytes(blob[2 * half: 3 * half]),
                 fq.from_bytes(blob[3 * half:]))
        pt = group.point(x, y)  # validates reduced coordinates + curve equation
    except ValueError as exc:
        raise ArtifactCorruption(
            f"corrupt {r.artifact}: point at offset {offset} "
            f"is not a valid curve point ({exc})",
            artifact=r.artifact,
        ) from exc
    if subgroup and not group.in_subgroup(pt):
        raise ArtifactCorruption(
            f"corrupt {r.artifact}: point at offset {offset} is on the "
            "curve but outside the prime-order subgroup",
            artifact=r.artifact,
        )
    return pt


def _write_points(w, group, points):
    w.u32(len(points))
    for p in points:
        _write_point(w, group, p)


def _read_points(r, group, subgroup=False):
    return [_read_point(r, group, subgroup=subgroup) for _ in range(r.u32())]


def _header(w, magic, curve):
    w.raw(magic)
    w.u32(_CURVE_IDS[curve.name])


def _check_header(r, magic):
    from repro.curves import get_curve

    got = r.raw(4)
    if got != magic:
        raise ArtifactCorruption(
            f"bad magic {got!r}, expected {magic!r}", artifact=r.artifact,
        )
    curve_id = r.u32()
    if curve_id not in _CURVE_BY_ID:
        raise ArtifactCorruption(
            f"unknown curve id {curve_id} in {r.artifact}",
            artifact=r.artifact,
        )
    return get_curve(_CURVE_BY_ID[curve_id])


# -- proof -----------------------------------------------------------------------


def proof_to_bytes(proof):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:proof")
    w = _Writer()
    _header(w, _MAGIC_PROOF, proof.curve)
    _write_point(w, proof.curve.g1, proof.a)
    _write_point(w, proof.curve.g2, proof.b)
    _write_point(w, proof.curve.g1, proof.c)
    return w.bytes()


def proof_from_bytes(data):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:proof")
    r = _Reader(data, artifact="proof")
    curve = _check_header(r, _MAGIC_PROOF)
    a = _read_point(r, curve.g1, subgroup=True)
    b = _read_point(r, curve.g2, subgroup=True)
    c = _read_point(r, curve.g1, subgroup=True)
    r.done()
    return Proof(curve=curve, a=a, b=b, c=c)


# -- verifying key ------------------------------------------------------------------


def vk_to_bytes(vk):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:vk")
    w = _Writer()
    _header(w, _MAGIC_VK, vk.curve)
    _write_point(w, vk.curve.g1, vk.alpha1)
    _write_point(w, vk.curve.g2, vk.beta2)
    _write_point(w, vk.curve.g2, vk.gamma2)
    _write_point(w, vk.curve.g2, vk.delta2)
    _write_points(w, vk.curve.g1, vk.ic)
    w.u32(len(vk.public_wires))
    for wire in vk.public_wires:
        w.u32(wire)
    return w.bytes()


def vk_from_bytes(data):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:vk")
    r = _Reader(data, artifact="verifying key")
    curve = _check_header(r, _MAGIC_VK)
    alpha1 = _read_point(r, curve.g1, subgroup=True)
    beta2 = _read_point(r, curve.g2, subgroup=True)
    gamma2 = _read_point(r, curve.g2, subgroup=True)
    delta2 = _read_point(r, curve.g2, subgroup=True)
    ic = _read_points(r, curve.g1, subgroup=True)
    public_wires = [r.u32() for _ in range(r.u32())]
    r.done()
    if len(ic) != len(public_wires):
        raise ArtifactCorruption(
            "IC/public-wire length mismatch", artifact="verifying key",
            expected=f"{len(ic)} wires", actual=f"{len(public_wires)} wires",
        )
    return VerifyingKey(curve=curve, alpha1=alpha1, beta2=beta2, gamma2=gamma2,
                        delta2=delta2, ic=ic, public_wires=public_wires)


# -- proving key ----------------------------------------------------------------------


def pk_to_bytes(pk):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:pk")
    w = _Writer()
    _header(w, _MAGIC_PK, pk.curve)
    w.u32(pk.domain_size)
    for pt in (pk.alpha1, pk.beta1, pk.delta1):
        _write_point(w, pk.curve.g1, pt)
    for pt in (pk.beta2, pk.delta2):
        _write_point(w, pk.curve.g2, pt)
    _write_points(w, pk.curve.g1, pk.a_query)
    _write_points(w, pk.curve.g1, pk.b1_query)
    _write_points(w, pk.curve.g2, pk.b2_query)
    _write_points(w, pk.curve.g1, pk.h_query)
    wires = sorted(pk.l_query)
    w.u32(len(wires))
    for wire in wires:
        w.u32(wire)
        _write_point(w, pk.curve.g1, pk.l_query[wire])
    return w.bytes()


def pk_from_bytes(data):
    if faults.CURRENT is not None:
        faults.CURRENT.check("serialize:pk")
    r = _Reader(data, artifact="proving key")
    curve = _check_header(r, _MAGIC_PK)
    domain_size = r.u32()
    # Header points get the full subgroup check; the bulk query sections
    # below stay curve-equation-only (see the module docstring).
    alpha1, beta1, delta1 = (_read_point(r, curve.g1, subgroup=True)
                             for _ in range(3))
    beta2, delta2 = (_read_point(r, curve.g2, subgroup=True)
                     for _ in range(2))
    a_query = _read_points(r, curve.g1)
    b1_query = _read_points(r, curve.g1)
    b2_query = _read_points(r, curve.g2)
    h_query = _read_points(r, curve.g1)
    l_query = {}
    for _ in range(r.u32()):
        wire = r.u32()
        l_query[wire] = _read_point(r, curve.g1)
    r.done()
    return ProvingKey(
        curve=curve, alpha1=alpha1, beta1=beta1, beta2=beta2,
        delta1=delta1, delta2=delta2, a_query=a_query, b1_query=b1_query,
        b2_query=b2_query, l_query=l_query, h_query=h_query,
        domain_size=domain_size,
    )

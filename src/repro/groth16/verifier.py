"""The *verifying* stage: check a Groth16 proof.

One small MSM over the public inputs and a four-term product of pairings:

    ``e(A, B) = e(alpha, beta) * e(vk_x, gamma) * e(C, delta)``

checked as ``e(-A, B) * e(alpha, beta) * e(vk_x, gamma) * e(C, delta) == 1``
with a single shared final exponentiation.

Constant work regardless of circuit size — which is why the paper's Fig. 5
shows flat loads/stores, Fig. 6 a flat speedup, and the execution time is
independent of the constraint count.  ``bigint`` computation dominates CPU
time here (~10%, Table IV) and the stage is compute-intensive (48.2% compute
opcodes, Table V).
"""

from __future__ import annotations

from repro.curves.pairing import PairingEngine
from repro.obs import metrics
from repro.perf import trace

__all__ = ["verify"]

# One engine per curve: the Frobenius/exponent precomputation is shared.
_ENGINES = {}

#: Modeled bytes of runtime image (node + snarkjs + curve tables) the
#: verifier cold-starts through before the pairing work begins.
_RUNTIME_IMAGE_BYTES = 1 << 20


def _engine(curve):
    eng = _ENGINES.get(curve.name)
    if eng is None:
        eng = PairingEngine(curve)
        _ENGINES[curve.name] = eng
    return eng


def verify(vk, proof, publics):
    """Return True iff *proof* is valid for the public inputs *publics*.

    Parameters
    ----------
    vk:
        The :class:`~repro.groth16.keys.VerifyingKey`.
    proof:
        The :class:`~repro.groth16.keys.Proof` to check.
    publics:
        Values of the public wires in ``vk.public_wires[1:]`` order — what
        :func:`~repro.groth16.witness.public_inputs` returns.
    """
    if len(publics) != len(vk.ic) - 1:
        raise ValueError(
            f"expected {len(vk.ic) - 1} public inputs, got {len(publics)}"
        )
    curve = vk.curve
    t = trace.CURRENT
    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_groth16_verify_total")
    eng = _engine(curve)

    def _prepare():
        acc = vk.ic[0]
        for coeff, point in zip(publics, vk.ic[1:]):
            acc = acc + point * (coeff % curve.fr.modulus)
        return acc

    def _check(vk_x):
        return eng.pairing_check(
            [
                (-proof.a, proof.b),
                (vk.alpha1, vk.beta2),
                (vk_x, vk.gamma2),
                (proof.c, vk.delta2),
            ]
        )

    if t is None:
        return _check(_prepare())

    with t.region("verify_parse_proof", parallel=False):
        # Runtime startup: node + snarkjs module load, vkey/proof JSON parse.
        # A modest stream, but against the stage's small instruction count
        # it is what produces the 4-5 GB/s peak the paper's Table III shows.
        rt = t.malloc(_RUNTIME_IMAGE_BYTES)
        t.stream(rt, _RUNTIME_IMAGE_BYTES, ticks_per_kb=64, op_name="wasm_validate")
        t.page_fault(1 + _RUNTIME_IMAGE_BYTES // 4096)
        t.memcpy(t.malloc(proof.size_bytes()), 0, proof.size_bytes())
        t.op("json_parse_field", 16)
    with t.region("verify_prepare_inputs", parallel=True, items=max(len(publics), 1)):
        vk_x = _prepare()
    # The four Miller loops are independent (parallelizable); the shared
    # final exponentiation is the serial tail.
    with t.region("verify_miller_loops", parallel=True, items=4):
        f = eng._one
        for P, Q in [
            (-proof.a, proof.b),
            (vk.alpha1, vk.beta2),
            (vk_x, vk.gamma2),
            (proof.c, vk.delta2),
        ]:
            f = f * eng.miller_loop(P.to_affine(), Q.to_affine())
    with t.region("verify_final_exp", parallel=False):
        return eng.final_exponentiation(f).is_one()

"""The Groth16 zk-SNARK: setup, witness, proving and verifying stages.

Together with the *compile* stage in :mod:`repro.circuit`, these four
modules implement the five-stage workflow of the paper's Fig. 1 (the role
snarkjs plays in the measured stack), over either supported curve.

Typical use::

    from repro.circuit import CircuitBuilder, compile_circuit, gadgets
    from repro.curves import get_curve
    from repro.groth16 import setup, generate_witness, prove, verify

    curve = get_curve("bn128")
    b = CircuitBuilder("pow", curve.fr)
    y = gadgets.exponentiate(b, b.private_input("x"), 8)
    b.output(y, "y")
    circuit = compile_circuit(b)

    pk, vk = setup(curve, circuit, rng)
    witness = generate_witness(circuit, {"x": 3})
    proof = prove(pk, circuit, witness, rng)
    assert verify(vk, proof, public_inputs(circuit, witness))
"""

from repro.groth16.keys import Proof, ProvingKey, VerifyingKey
from repro.groth16.setup import setup
from repro.groth16.witness import generate_witness, public_inputs
from repro.groth16.prover import prove
from repro.groth16.verifier import verify

__all__ = [
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "generate_witness",
    "prove",
    "public_inputs",
    "setup",
    "verify",
]

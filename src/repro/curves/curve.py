"""Short-Weierstrass group arithmetic in Jacobian coordinates.

One generic implementation serves both G1 (coordinates are plain integers in
``Fq``) and G2 (coordinates are raw ``(int, int)`` pairs in ``Fq2``): the
group is parameterized by a small *coordinate-ops adapter* so the hot MSM
path over G1 runs on bare integers while G2 reuses the identical formulas.

Both supported curves have ``a = 0`` (``y^2 = x^3 + b``), which the doubling
formula exploits.  Formulas are the standard ``dbl-2009-l`` /
``add-2007-bl`` / ``madd-2007-bl`` from the EFD.

Group operations additionally report ``ec_dbl_<tag>`` / ``ec_add_<tag>``
primitives to the tracer: the cost model charges them the loop/branch glue a
real curve library spends around its field calls, which is where much of the
control-flow share in the paper's Table V comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf import trace

__all__ = ["FpOps", "Fp2Ops", "Group", "Point", "CurveSpec"]


class FpOps:
    """Coordinate adapter for G1: opaque values are reduced Python ints."""

    __slots__ = ("fq", "tag", "zero", "one")

    def __init__(self, fq, tag):
        self.fq = fq
        self.tag = tag
        self.zero = 0
        self.one = 1

    def add(self, a, b):
        return self.fq.add(a, b)

    def sub(self, a, b):
        return self.fq.sub(a, b)

    def neg(self, a):
        return self.fq.neg(a)

    def mul(self, a, b):
        return self.fq.mul(a, b)

    def sqr(self, a):
        return self.fq.sqr(a)

    def inv(self, a):
        return self.fq.inv(a)

    def is_zero(self, a):
        return a == 0

    def coerce(self, v):
        """Accept an int (or int-like) coordinate and reduce it."""
        return int(v) % self.fq.modulus


class Fp2Ops:
    """Coordinate adapter for G2: opaque values are raw ``(c0, c1)`` pairs."""

    __slots__ = ("tower", "tag", "zero", "one")

    def __init__(self, tower, tag):
        self.tower = tower
        self.tag = tag
        self.zero = (0, 0)
        self.one = (1, 0)

    def add(self, a, b):
        return self.tower.f2_add(a, b)

    def sub(self, a, b):
        return self.tower.f2_sub(a, b)

    def neg(self, a):
        return self.tower.f2_neg(a)

    def mul(self, a, b):
        return self.tower.f2_mul(a, b)

    def sqr(self, a):
        return self.tower.f2_sqr(a)

    def inv(self, a):
        return self.tower.f2_inv(a)

    def is_zero(self, a):
        return a == (0, 0)

    def coerce(self, v):
        p = self.tower.fq.modulus
        c0, c1 = v
        return (int(c0) % p, int(c1) % p)


class Group:
    """One elliptic-curve group ``y^2 = x^3 + b`` over a coordinate field.

    Parameters
    ----------
    name:
        Label such as ``"bn128.G1"``.
    ops:
        Coordinate adapter (:class:`FpOps` or :class:`Fp2Ops`).
    b:
        Curve constant, in the adapter's raw representation.
    generator:
        Affine ``(x, y)`` of the standard subgroup generator.
    order:
        Prime order ``r`` of the subgroup.
    cofactor:
        Curve cofactor (recorded for documentation/subgroup checks).
    """

    def __init__(self, name, ops, b, generator, order, cofactor=1):
        self.name = name
        self.ops = ops
        self.b = b
        self.order = order
        self.cofactor = cofactor
        self._dbl_tag = f"ec_dbl_{ops.tag}"
        self._add_tag = f"ec_add_{ops.tag}"
        gx, gy = generator
        self.generator = self.point(gx, gy)

    def __repr__(self):
        return f"Group({self.name})"

    # -- construction -----------------------------------------------------------

    def infinity(self):
        """The identity element."""
        return Point(self, self.ops.one, self.ops.one, self.ops.zero)

    def point(self, x, y):
        """Build a point from affine coordinates, validating the curve equation."""
        ops = self.ops
        x, y = ops.coerce(x), ops.coerce(y)
        if not self.on_curve(x, y):
            raise ValueError(f"{self.name}: ({x!r}, {y!r}) is not on the curve")
        return Point(self, x, y, ops.one)

    def point_unchecked(self, x, y):
        """Build a point from affine coordinates without the curve check
        (used by kernels that only handle vetted points)."""
        return Point(self, x, y, self.ops.one)

    def on_curve(self, x, y):
        """Check ``y^2 == x^3 + b`` for affine coordinates."""
        ops = self.ops
        lhs = ops.sqr(y)
        rhs = ops.add(ops.mul(ops.sqr(x), x), self.b)
        return lhs == rhs

    def random_point(self, rng):
        """A uniform non-identity subgroup element (``k * G`` for random k)."""
        k = rng.randrange(1, self.order)
        return self.generator * k

    def in_subgroup(self, pt):
        """True iff *pt* lies in the order-``r`` subgroup (O(log r) doublings).

        ``Point.__mul__`` reduces its scalar mod ``order`` — correct inside
        the subgroup, but ``pt * order`` would degenerate to ``pt * 0`` and
        accept everything — so this runs its own unreduced ladder.
        """
        if pt.is_infinity():
            return True
        acc = self.infinity()
        for bit in bin(self.order)[2:]:
            acc = acc.double()
            if bit == "1":
                acc = acc + pt
        return acc.is_infinity()


class Point:
    """A Jacobian-coordinate point ``(X : Y : Z)``; ``Z == 0`` is infinity."""

    __slots__ = ("group", "X", "Y", "Z")

    def __init__(self, group, X, Y, Z):
        self.group = group
        self.X = X
        self.Y = Y
        self.Z = Z

    # -- predicates ---------------------------------------------------------------

    def is_infinity(self):
        return self.group.ops.is_zero(self.Z)

    def __bool__(self):
        return not self.is_infinity()

    def __eq__(self, other):
        if not isinstance(other, Point) or other.group is not self.group:
            return NotImplemented
        ops = self.group.ops
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        # Cross-multiply to compare without inversions:
        #   X1 / Z1^2 == X2 / Z2^2   and   Y1 / Z1^3 == Y2 / Z2^3
        z1z1, z2z2 = ops.sqr(self.Z), ops.sqr(other.Z)
        if ops.mul(self.X, z2z2) != ops.mul(other.X, z1z1):
            return False
        z1c, z2c = ops.mul(z1z1, self.Z), ops.mul(z2z2, other.Z)
        return ops.mul(self.Y, z2c) == ops.mul(other.Y, z1c)

    def __hash__(self):
        aff = self.to_affine()
        return hash((self.group.name, aff))

    # -- group law -------------------------------------------------------------------

    def double(self):
        """Point doubling (``dbl-2009-l``, a = 0)."""
        ops = self.group.ops
        if self.is_infinity() or ops.is_zero(self.Y):
            return self.group.infinity()
        t = trace.CURRENT
        if t is not None:
            t.op(self.group._dbl_tag)
        X, Y, Z = self.X, self.Y, self.Z
        A = ops.sqr(X)
        B = ops.sqr(Y)
        C = ops.sqr(B)
        D = ops.sub(ops.sub(ops.sqr(ops.add(X, B)), A), C)
        D = ops.add(D, D)
        E = ops.add(ops.add(A, A), A)
        F = ops.sqr(E)
        X3 = ops.sub(F, ops.add(D, D))
        C8 = ops.add(C, C)
        C8 = ops.add(C8, C8)
        C8 = ops.add(C8, C8)
        Y3 = ops.sub(ops.mul(E, ops.sub(D, X3)), C8)
        YZ = ops.mul(Y, Z)
        Z3 = ops.add(YZ, YZ)
        return Point(self.group, X3, Y3, Z3)

    def __add__(self, other):
        """General Jacobian addition (``add-2007-bl``)."""
        if not isinstance(other, Point) or other.group is not self.group:
            return NotImplemented
        ops = self.group.ops
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        t = trace.CURRENT
        if t is not None:
            t.op(self.group._add_tag)
        X1, Y1, Z1 = self.X, self.Y, self.Z
        X2, Y2, Z2 = other.X, other.Y, other.Z
        Z1Z1 = ops.sqr(Z1)
        Z2Z2 = ops.sqr(Z2)
        U1 = ops.mul(X1, Z2Z2)
        U2 = ops.mul(X2, Z1Z1)
        S1 = ops.mul(ops.mul(Y1, Z2), Z2Z2)
        S2 = ops.mul(ops.mul(Y2, Z1), Z1Z1)
        H = ops.sub(U2, U1)
        rr = ops.sub(S2, S1)
        if ops.is_zero(H):
            if ops.is_zero(rr):
                return self.double()
            return self.group.infinity()
        rr = ops.add(rr, rr)
        I = ops.sqr(ops.add(H, H))
        J = ops.mul(H, I)
        V = ops.mul(U1, I)
        X3 = ops.sub(ops.sub(ops.sqr(rr), J), ops.add(V, V))
        S1J = ops.mul(S1, J)
        Y3 = ops.sub(ops.mul(rr, ops.sub(V, X3)), ops.add(S1J, S1J))
        Z3 = ops.mul(ops.sub(ops.sub(ops.sqr(ops.add(Z1, Z2)), Z1Z1), Z2Z2), H)
        return Point(self.group, X3, Y3, Z3)

    def add_affine(self, x2, y2):
        """Mixed addition with an affine point (``madd-2007-bl``) — the MSM
        hot path, one field multiplication cheaper than the general add."""
        ops = self.group.ops
        if self.is_infinity():
            return Point(self.group, x2, y2, ops.one)
        t = trace.CURRENT
        if t is not None:
            t.op(self.group._add_tag)
        X1, Y1, Z1 = self.X, self.Y, self.Z
        Z1Z1 = ops.sqr(Z1)
        U2 = ops.mul(x2, Z1Z1)
        S2 = ops.mul(ops.mul(y2, Z1), Z1Z1)
        H = ops.sub(U2, X1)
        rr = ops.sub(S2, Y1)
        if ops.is_zero(H):
            if ops.is_zero(rr):
                return self.double()
            return self.group.infinity()
        rr = ops.add(rr, rr)
        HH = ops.sqr(H)
        I = ops.add(HH, HH)
        I = ops.add(I, I)
        J = ops.mul(H, I)
        V = ops.mul(X1, I)
        X3 = ops.sub(ops.sub(ops.sqr(rr), J), ops.add(V, V))
        YJ = ops.mul(Y1, J)
        Y3 = ops.sub(ops.mul(rr, ops.sub(V, X3)), ops.add(YJ, YJ))
        Z3 = ops.sub(ops.sub(ops.sqr(ops.add(Z1, H)), Z1Z1), HH)
        return Point(self.group, X3, Y3, Z3)

    def __neg__(self):
        if self.is_infinity():
            return self
        return Point(self.group, self.X, self.group.ops.neg(self.Y), self.Z)

    def __sub__(self, other):
        return self + (-other)

    def __mul__(self, k):
        """Scalar multiplication (left-to-right double-and-add)."""
        if not isinstance(k, int):
            return NotImplemented
        k %= self.group.order
        if k == 0 or self.is_infinity():
            return self.group.infinity()
        acc = self.group.infinity()
        for bit in bin(k)[2:]:
            acc = acc.double()
            if bit == "1":
                acc = acc + self
        return acc

    __rmul__ = __mul__

    # -- coordinates --------------------------------------------------------------------

    def to_affine(self):
        """Return affine ``(x, y)`` raw coordinates, or ``None`` at infinity."""
        if self.is_infinity():
            return None
        ops = self.group.ops
        zinv = ops.inv(self.Z)
        zinv2 = ops.sqr(zinv)
        x = ops.mul(self.X, zinv2)
        y = ops.mul(self.Y, ops.mul(zinv2, zinv))
        return (x, y)

    def normalize(self):
        """Return the same point with ``Z == 1`` (or infinity unchanged)."""
        aff = self.to_affine()
        if aff is None:
            return self.group.infinity()
        return Point(self.group, aff[0], aff[1], self.group.ops.one)

    def __repr__(self):
        aff = self.to_affine()
        if aff is None:
            return f"Point({self.group.name}, infinity)"
        return f"Point({self.group.name}, x={aff[0]!r}, y={aff[1]!r})"


@dataclass(frozen=True)
class CurveSpec:
    """Everything the protocol stack needs to know about one pairing curve."""

    name: str
    family: str  # "bn" or "bls"
    fq: object
    fr: object
    tower: object
    g1: Group
    g2: Group
    #: BN: the ate loop count 6u+2.  BLS: |x| (with ``x_negative`` set).
    ate_loop: int
    x_negative: bool = False
    #: Curve family parameter (u for BN, x for BLS) for documentation.
    parameter: int = 0

    def __repr__(self):
        return f"CurveSpec({self.name})"

"""Elliptic-curve groups and pairings for BN254 ("BN128") and BLS12-381.

The module exposes one :class:`~repro.curves.curve.CurveSpec` per supported
curve, each bundling the base/scalar fields, the G1 and G2 groups, and the
parameters the optimal-ate pairing needs.  ``get_curve(name)`` is the lookup
used throughout the harness ("bn128" / "bls12_381", matching the paper's
curve axis).
"""

from repro.curves.curve import CurveSpec, FpOps, Fp2Ops, Group, Point
from repro.curves.bn128 import BN128
from repro.curves.bls12_381 import BLS12_381
from repro.curves.pairing import PairingEngine

_CURVES = {
    "bn128": BN128,
    "bn254": BN128,
    "bls12_381": BLS12_381,
    "bls12-381": BLS12_381,
}


def get_curve(name):
    """Return the :class:`CurveSpec` registered under *name*.

    Accepts the paper's names ("bn128", "bls12_381") plus common aliases.
    """
    try:
        return _CURVES[name.lower().replace("-", "_")]
    except KeyError:
        raise ValueError(f"unknown curve {name!r}; choose from {sorted(set(_CURVES))}") from None


CURVE_NAMES = ("bn128", "bls12_381")

__all__ = [
    "BLS12_381",
    "BN128",
    "CURVE_NAMES",
    "CurveSpec",
    "Fp2Ops",
    "FpOps",
    "Group",
    "PairingEngine",
    "Point",
    "get_curve",
]

"""Optimal ate pairings for BN254 and BLS12-381.

The Miller loop runs on the *untwisted* image of G2 inside ``E(Fp12)`` with
affine coordinates, sharing each step's slope between the point update and
the line evaluation.  This is the textbook formulation (the one py_ecc also
uses) — slower than projective sparse-multiplication pipelines, but easy to
audit, and the cost structure (big-integer multiplies dominating) is exactly
what the paper's verifying-stage characterization depends on.

The final exponentiation does the "easy" part with conjugation/Frobenius and
the "hard" part by direct exponentiation with ``(p^4 - p^2 + 1) / r``.

Correctness is established by the bilinearity/non-degeneracy property tests
in ``tests/curves/test_pairing.py`` plus the end-to-end Groth16 tests — a
non-degenerate bilinear map is precisely the interface Groth16 consumes.
"""

from __future__ import annotations

from repro.fields.extensions import Fp12
from repro.perf import trace

__all__ = ["PairingEngine"]


class PairingEngine:
    """Pairing ``e : G1 x G2 -> Fp12`` for one :class:`CurveSpec`."""

    def __init__(self, curve):
        self.curve = curve
        self.tower = curve.tower
        p = curve.fq.modulus
        r = curve.fr.modulus
        hard = p**4 - p**2 + 1
        if hard % r != 0:
            raise ValueError(f"{curve.name}: r does not divide p^4 - p^2 + 1")
        self._hard_exponent = hard // r
        self._one = self.tower.fp12_one()

    # -- embeddings ------------------------------------------------------------

    def _fp12_scalar(self, c):
        """Embed a base-field integer as an Fp12 element."""
        z = (0, 0)
        return Fp12(self.tower, ((c, 0), z, z), (z, z, z))

    def embed_g1(self, P):
        """Map an affine G1 point (ints) to ``E(Fp12)`` coordinates."""
        x, y = P
        return (self._fp12_scalar(x), self._fp12_scalar(y))

    def untwist_g2(self, Q):
        """Map an affine twist point (Fp2 pairs) to ``E(Fp12)``.

        BN254 uses a D-type twist (``psi(x,y) = (x w^2, y w^3)``); BLS12-381
        an M-type twist (``psi(x,y) = (x w^4 / xi, y w^3 / xi)``).  In the
        tower basis ``w^2 = v`` these land on sparse Fp6 slots.
        """
        t = self.tower
        xq, yq = Q
        z = (0, 0)
        if self.curve.family == "bn":
            x12 = Fp12(t, (z, xq, z), (z, z, z))          # x * v
            y12 = Fp12(t, (z, z, z), (z, yq, z))          # y * v * w
        else:
            xi_inv = t.f2_inv(t.xi)
            xs = t.f2_mul(xq, xi_inv)
            ys = t.f2_mul(yq, xi_inv)
            x12 = Fp12(t, (z, z, xs), (z, z, z))          # x/xi * v^2
            y12 = Fp12(t, (z, z, z), (z, ys, z))          # y/xi * v * w
        return (x12, y12)

    # -- affine steps in E(Fp12) --------------------------------------------------

    def _double_step(self, R, P):
        """Return ``(2R, line_{R,R}(P))`` sharing the tangent slope."""
        x1, y1 = R
        xt, yt = P
        x1_sq = x1.square()
        num = x1_sq + x1_sq + x1_sq
        den = y1 + y1
        m = num * den.inverse()
        x3 = m.square() - (x1 + x1)
        y3 = m * (x1 - x3) - y1
        line = m * (xt - x1) - (yt - y1)
        return (x3, y3), line

    def _add_step(self, R, Q, P):
        """Return ``(R + Q, line_{R,Q}(P))`` sharing the chord slope."""
        x1, y1 = R
        x2, y2 = Q
        xt, yt = P
        if x1 == x2:
            if y1 == y2:
                return self._double_step(R, P)
            # Vertical line; R + Q is the identity.
            return None, xt - x1
        m = (y2 - y1) * (x2 - x1).inverse()
        x3 = m.square() - x1 - x2
        y3 = m * (x1 - x3) - y1
        line = m * (xt - x1) - (yt - y1)
        return (x3, y3), line

    def _frobenius_point(self, R):
        """Coordinate-wise Frobenius ``(x^p, y^p)`` — an endomorphism of E."""
        x, y = R
        return (x.frobenius(), y.frobenius())

    # -- Miller loop -----------------------------------------------------------------

    def miller_loop(self, P_aff, Q_aff):
        """The Miller function value ``f`` before final exponentiation.

        *P_aff* is an affine G1 point (raw ints), *Q_aff* an affine twist
        point (raw Fp2 pairs).  Returns 1 if either input is the identity.
        """
        if P_aff is None or Q_aff is None:
            return self._one
        tracer = trace.CURRENT
        if tracer is not None:
            tracer.op("pairing_miller_loop")
        P = self.embed_g1(P_aff)
        Q = self.untwist_g2(Q_aff)
        loop = self.curve.ate_loop
        f = self._one
        R = Q
        for i in range(loop.bit_length() - 2, -1, -1):
            R, line = self._double_step(R, P)
            f = f * f * line
            if (loop >> i) & 1:
                R, line = self._add_step(R, Q, P)
                f = f * line
        if self.curve.family == "bn":
            # Optimal ate for BN needs two Frobenius-twisted additions.
            Q1 = self._frobenius_point(Q)
            Q2 = self._frobenius_point(Q1)
            nQ2 = (Q2[0], -Q2[1])
            R, line = self._add_step(R, Q1, P)
            f = f * line
            _, line = self._add_step(R, nQ2, P)
            f = f * line
        elif self.curve.x_negative:
            # BLS with negative x: conjugate f (valid up to final exp).
            f = f.conjugate()
        return f

    # -- final exponentiation -----------------------------------------------------------

    def final_exponentiation(self, f):
        """Map a Miller value to the order-r cyclotomic subgroup."""
        tracer = trace.CURRENT
        if tracer is not None:
            tracer.op("pairing_final_exp")
        if f.is_zero():
            # codelint: ignore[RC301] -- mirrors Python division semantics
            raise ZeroDivisionError("final exponentiation of zero (degenerate pairing input)")
        f1 = f.conjugate() * f.inverse()              # f^(p^6 - 1)
        f2 = f1.frobenius().frobenius() * f1          # ... ^(p^2 + 1)
        return f2 ** self._hard_exponent              # ... ^((p^4 - p^2 + 1)/r)

    # -- public API ------------------------------------------------------------------------

    def pairing(self, P, Q):
        """``e(P, Q)`` for ``P`` in G1 and ``Q`` in G2 (group Points)."""
        return self.final_exponentiation(
            self.miller_loop(P.to_affine(), Q.to_affine())
        )

    def multi_pairing(self, pairs):
        """``prod_i e(P_i, Q_i)`` with a single shared final exponentiation —
        the standard verifier optimization (one final exp per proof)."""
        f = self._one
        for P, Q in pairs:
            f = f * self.miller_loop(P.to_affine(), Q.to_affine())
        return self.final_exponentiation(f)

    def pairing_check(self, pairs):
        """True iff ``prod_i e(P_i, Q_i) == 1`` — the Groth16 verify predicate."""
        return self.multi_pairing(pairs).is_one()

"""The BN254 curve ("BN128" in the paper; alt_bn128 in Ethereum).

``E : y^2 = x^3 + 3`` over ``Fq``; the sextic twist
``E' : y^2 = x^3 + 3/(9+u)`` over ``Fq2`` (D-type) hosts G2.
Generators are the EIP-196/197 standard points used by snarkjs.
"""

from repro.curves.curve import CurveSpec, Fp2Ops, FpOps, Group
from repro.fields.params import BN254_ATE_LOOP, BN254_FQ, BN254_FR, BN254_TOWER, BN254_U

__all__ = ["BN128"]

_G2_GENERATOR_X = (
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
_G2_GENERATOR_Y = (
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)

#: Cofactor of E'(Fq2) relative to the order-r subgroup.
_G2_COFACTOR = 21888242871839275222246405745257275088844257914179612981679871602714643921549

_g1 = Group(
    name="bn128.G1",
    ops=FpOps(BN254_FQ, tag="g1_bn"),
    b=3,
    generator=(1, 2),
    order=BN254_FR.modulus,
    cofactor=1,
)

# b2 = 3 / (9 + u) in Fq2.
_b2 = BN254_TOWER.f2_scale(BN254_TOWER.f2_inv(BN254_TOWER.xi), 3)

_g2 = Group(
    name="bn128.G2",
    ops=Fp2Ops(BN254_TOWER, tag="g2_bn"),
    b=_b2,
    generator=(_G2_GENERATOR_X, _G2_GENERATOR_Y),
    order=BN254_FR.modulus,
    cofactor=_G2_COFACTOR,
)

BN128 = CurveSpec(
    name="bn128",
    family="bn",
    fq=BN254_FQ,
    fr=BN254_FR,
    tower=BN254_TOWER,
    g1=_g1,
    g2=_g2,
    ate_loop=BN254_ATE_LOOP,
    x_negative=False,
    parameter=BN254_U,
)

"""Multi-scalar multiplication kernels.

MSM is the dominant kernel of Groth16's setup and proving stages (the module
PipeZK and DistMSM accelerate).  Three implementations:

- :func:`repro.msm.naive.msm_naive` — per-point double-and-add baseline
  (the ablation comparator),
- :func:`repro.msm.pippenger.msm_pippenger` — windowed bucket method, the
  production path used by the prover,
- :class:`repro.msm.fixed_base.FixedBaseTable` — fixed-base comb used by the
  trusted setup, where thousands of scalars share one base point.
"""

from repro.msm.fixed_base import FixedBaseTable
from repro.msm.naive import msm_naive
from repro.msm.pippenger import msm_pippenger, optimal_window

__all__ = ["FixedBaseTable", "msm_naive", "msm_pippenger", "optimal_window"]

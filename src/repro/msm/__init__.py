"""Multi-scalar multiplication kernels.

MSM is the dominant kernel of Groth16's setup and proving stages (the module
PipeZK and DistMSM accelerate).  Implementations (docs/KERNELS.md):

- :func:`repro.msm.naive.msm_naive` — per-point double-and-add baseline
  (the ablation comparator),
- :func:`repro.msm.pippenger.msm_pippenger` — windowed bucket method, the
  reference kernel every optimization is differentially gated against (and
  the kernel modeled runs always see),
- :func:`repro.msm.wnaf.msm_wnaf` — signed-digit buckets (half the bucket
  count) with batch-affine accumulation (Montgomery simultaneous
  inversion),
- :func:`repro.msm.glv.msm_glv` — GLV endomorphism decomposition feeding
  half-width scalars into the signed-digit kernel (G1 only; falls back to
  ``msm_wnaf`` elsewhere),
- :func:`repro.msm.dispatch.msm_auto` — the production entry point: picks
  the fastest applicable kernel, honours ``REPRO_MSM``, keeps traced runs
  on the reference kernel,
- :class:`repro.msm.fixed_base.FixedBaseTable` — fixed-base comb used by the
  trusted setup, where thousands of scalars share one base point.
"""

from repro.msm.dispatch import MSM_MODES, msm_auto, msm_mode
from repro.msm.fixed_base import FixedBaseTable
from repro.msm.glv import GLVParams, decompose_scalar, glv_params, msm_glv
from repro.msm.naive import msm_naive
from repro.msm.pippenger import msm_pippenger, optimal_window
from repro.msm.recode import signed_windows, signed_windows_len, wnaf
from repro.msm.wnaf import msm_wnaf, optimal_signed_window

__all__ = [
    "FixedBaseTable",
    "GLVParams",
    "MSM_MODES",
    "decompose_scalar",
    "glv_params",
    "msm_auto",
    "msm_glv",
    "msm_mode",
    "msm_naive",
    "msm_pippenger",
    "msm_wnaf",
    "optimal_signed_window",
    "optimal_window",
    "signed_windows",
    "signed_windows_len",
    "wnaf",
]

"""Baseline MSM: independent double-and-add per term.

O(n * log r) group operations — the comparator for the Pippenger ablation
bench (``benchmarks/test_bench_ablation_msm.py``).
"""

from __future__ import annotations

from repro.perf import trace
from repro.resilience import retry as resilience

__all__ = ["msm_naive"]


def msm_naive(group, points, scalars):
    """Compute ``sum_i scalars[i] * points[i]`` term by term.

    *points* are affine raw-coordinate tuples (or ``None`` for identity),
    *scalars* plain integers.
    """
    if len(points) != len(scalars):
        raise ValueError(f"points/scalars length mismatch: {len(points)} vs {len(scalars)}")
    t = trace.CURRENT
    acc = group.infinity()
    if t is None:
        for pt, k in zip(points, scalars):
            # Cooperative deadline poll per term — each term is a full
            # double-and-add, the kernel's natural preemption point.
            if resilience.DEADLINE is not None:
                resilience.DEADLINE.check()
            if pt is None or k % group.order == 0:
                continue
            acc = acc + group.point_unchecked(*pt) * k
        return acc
    with t.region("msm_naive", parallel=True, items=len(points)):
        for pt, k in zip(points, scalars):
            if resilience.DEADLINE is not None:
                resilience.DEADLINE.check()
            if pt is None or k % group.order == 0:
                continue
            acc = acc + group.point_unchecked(*pt) * k
    return acc

"""Batch-affine bucket accumulation for the signed-digit MSM kernel.

The reference kernel accumulates buckets in Jacobian coordinates: each
mixed addition costs ~11 field multiplications but needs no inversion.
Real provers instead keep buckets *affine* and amortize the one inversion
an affine addition needs across a whole wave of independent additions with
Montgomery's simultaneous-inversion trick (3 multiplications per element
plus a single inversion — the same trick as
:meth:`repro.fields.prime_field.PrimeField.batch_inv`).  An affine addition
then costs ~6 multiplications: ``lambda = (y2-y1)/(x2-x1)``,
``x3 = lambda^2 - x1 - x2``, ``y3 = lambda*(x1-x3) - y1``.

Waves are built by pairing: every bucket pairs up its pending points, all
pairs across all buckets share one batched inversion, and the halved
pending lists go around again — ``O(log(max occupancy))`` rounds.  The
doubling (``P + P``, denominator ``2y``) and cancellation (``P + (-P)``,
result infinity) cases are classified *before* the batch so the inversion
input is never zero.

Everything runs through the group's coordinate adapter
(:class:`~repro.curves.curve.FpOps` / ``Fp2Ops``), so the kernel serves G1
and G2 alike and traced runs keep attributing the field work to the bigint
primitives.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.resilience import retry as resilience

__all__ = ["batch_affine_accumulate"]


def _batch_inv(ops, xs):
    """Montgomery simultaneous inversion through a coordinate adapter.

    ``3(n-1)`` multiplications plus one inversion; *xs* must be non-zero
    (the caller's pair classification guarantees it).
    """
    n = len(xs)
    prefix = [ops.one] * n
    acc = ops.one
    for i in range(n):
        prefix[i] = acc
        acc = ops.mul(acc, xs[i])
    inv_acc = ops.inv(acc)
    out = [ops.one] * n
    for i in range(n - 1, -1, -1):
        out[i] = ops.mul(inv_acc, prefix[i])
        inv_acc = ops.mul(inv_acc, xs[i])
    return out


def batch_affine_accumulate(group, n_buckets, entries):
    """Sum *entries* into affine buckets with batched-inversion additions.

    Parameters
    ----------
    group:
        The curve group (supplies the coordinate adapter).
    n_buckets:
        Number of bucket slots; entry indices are 1-based like the digit
        values that produce them (bucket ``d`` lands at index ``d - 1``).
    entries:
        Iterable of ``(bucket, (x, y))`` with 1-based bucket index and an
        affine point in the adapter's raw representation.

    Returns a list of ``n_buckets`` affine ``(x, y)`` tuples (``None`` for
    an empty/cancelled bucket).
    """
    ops = group.ops
    pending = [[] for _ in range(n_buckets)]
    for bucket, pt in entries:
        pending[bucket - 1].append(pt)

    m = metrics.CURRENT
    while True:
        # Cooperative deadline poll once per pairing round — each round is
        # a full pass over every occupied bucket.
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        # One pairing round: each bucket contributes len(items)//2
        # independent additions; all their denominators share one
        # inversion batch.
        pairs = []  # (bucket index, P, Q)
        for b in range(n_buckets):
            items = pending[b]
            k = len(items)
            if k < 2:
                continue
            nxt = []
            for i in range(0, k - 1, 2):
                pairs.append((b, items[i], items[i + 1]))
            if k & 1:
                nxt.append(items[-1])
            pending[b] = nxt
        if not pairs:
            break

        denoms = []
        kinds = []  # aligned with pairs: "add" | "dbl" | None (infinity)
        for _b, (x1, y1), (x2, y2) in pairs:
            if x1 != x2:
                kinds.append("add")
                denoms.append(ops.sub(x2, x1))
            elif y1 == y2:
                if ops.is_zero(y1):
                    kinds.append(None)  # 2 * (x, 0) = infinity
                else:
                    kinds.append("dbl")
                    denoms.append(ops.add(y1, y1))
            else:
                kinds.append(None)  # P + (-P) = infinity
        if denoms:
            if m is not None:
                m.inc("repro_msm_batch_affine_inversions_total")
                m.observe("repro_msm_batch_affine_wave", len(denoms))
            invs = _batch_inv(ops, denoms)
        else:
            invs = []

        j = 0
        for (b, (x1, y1), (x2, y2)), kind in zip(pairs, kinds):
            if kind is None:
                continue
            inv = invs[j]
            j += 1
            if kind == "add":
                lam = ops.mul(ops.sub(y2, y1), inv)
            else:  # doubling: lambda = 3*x^2 / (2*y)  (a = 0 curves)
                xx = ops.sqr(x1)
                lam = ops.mul(ops.add(ops.add(xx, xx), xx), inv)
            x3 = ops.sub(ops.sub(ops.sqr(lam), x1), x2)
            y3 = ops.sub(ops.mul(lam, ops.sub(x1, x3)), y1)
            pending[b].append((x3, y3))

    return [items[0] if items else None for items in pending]

"""Signed-digit scalar recoders for the optimized MSM kernels.

Two encodings, both of which halve the bucket count of a windowed MSM by
exploiting the fact that negating a short-Weierstrass point is free
(``(x, y) -> (x, -y)``):

- :func:`signed_windows` — fixed-width windows with digits in
  ``[-(2^(c-1) - 1), 2^(c-1)]``: the recoding the bucket kernel uses, one
  digit per window position (dense, trivially alignable across scalars);
- :func:`wnaf` — width-``w`` non-adjacent form with odd digits in
  ``(-2^(w-1), 2^(w-1))``: the sparse sliding-window form (at most one
  nonzero digit in any ``w`` consecutive positions), used by single-scalar
  walks and kept here as the reference encoding the property suite checks
  the dense recoder against.

Both are pure integer transforms with exact round-trip identities, which is
what the hypothesis suite in ``tests/msm/test_kernel_properties.py`` pins.
"""

from __future__ import annotations

__all__ = ["signed_windows", "signed_windows_len", "wnaf", "wnaf_value"]


def signed_windows_len(nbits, c):
    """Number of digits :func:`signed_windows` emits for *nbits*-bit scalars.

    One extra position absorbs the final carry of the signed recoding.
    """
    if c < 1:
        raise ValueError(f"window width must be >= 1, got {c}")
    if nbits < 1:
        raise ValueError(f"scalar bit width must be >= 1, got {nbits}")
    return (nbits + c - 1) // c + 1


# codelint: ignore[RC501] -- pure integer recoder, bounded by n_digits; callers poll per window pass
def signed_windows(k, c, n_digits):
    """Recode non-negative *k* into *n_digits* signed ``c``-bit window digits.

    Digits lie in ``[-(2^(c-1) - 1), 2^(c-1)]`` and satisfy
    ``k == sum_i digits[i] * 2^(c*i)`` exactly.  A raw digit above
    ``2^(c-1)`` is replaced by ``digit - 2^c`` and a carry into the next
    window, so only ``2^(c-1)`` bucket slots are ever referenced (half of
    the unsigned kernel's ``2^c - 1``).

    *n_digits* must come from :func:`signed_windows_len` for the widest
    scalar in the batch so every scalar recodes to the same shape.
    """
    if k < 0:
        raise ValueError(f"signed_windows expects a non-negative scalar, got {k}")
    mask = (1 << c) - 1
    half = 1 << (c - 1)
    full = 1 << c
    digits = [0] * n_digits
    carry = 0
    for i in range(n_digits):
        d = ((k >> (c * i)) & mask) + carry
        if d > half:
            d -= full
            carry = 1
        else:
            carry = 0
        digits[i] = d
    if carry or k >> (c * n_digits):
        raise ValueError(
            f"scalar {k} does not fit in {n_digits} signed {c}-bit windows"
        )
    return digits


# codelint: ignore[RC501] -- pure integer transform over one scalar's bits
def wnaf(k, w):
    """Width-*w* non-adjacent form of non-negative *k* (least digit first).

    Returns a digit list with ``k == sum_i digits[i] * 2^i`` where every
    nonzero digit is odd, lies in ``(-2^(w-1), 2^(w-1))``, and any window
    of ``w`` consecutive digits holds at most one nonzero entry.
    """
    if w < 2:
        raise ValueError(f"wNAF width must be >= 2, got {w}")
    if k < 0:
        raise ValueError(f"wnaf expects a non-negative scalar, got {k}")
    full = 1 << w
    half = 1 << (w - 1)
    digits = []
    while k:
        if k & 1:
            d = k & (full - 1)
            if d >= half:
                d -= full
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


# codelint: ignore[RC501] -- round-trip helper for the property suite
def wnaf_value(digits):
    """Exact integer a :func:`wnaf` digit list encodes (round-trip check)."""
    acc = 0
    for d in reversed(digits):
        acc = (acc << 1) + d
    return acc

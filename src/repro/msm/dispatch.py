"""MSM kernel dispatch: one entry point, per-optimization selection.

:func:`msm_auto` is what the prover (:func:`repro.resilience.degrade.
resilient_msm`) and the parallel chunk task (``msm_chunk``) call.  It
routes to the fastest applicable kernel:

- **traced runs always use the reference kernel** — the analytical model's
  figures and tables are calibrated against the textbook Pippenger
  structure, so optimized kernels stay out of modeled runs exactly like
  the worker pool does (``active_pool()`` returns ``None`` under a
  tracer);
- ``REPRO_MSM`` overrides the choice per process: ``auto`` (default),
  ``glv``, ``wnaf``, ``pippenger``/``reference``, ``naive`` — the switch
  the differential matrix and the ``kernel-bench`` gate use to compare
  kernels on identical inputs;
- ``auto`` picks GLV for groups with the endomorphism (G1 of both curves)
  and the signed-digit kernel otherwise (G2).

Every kernel computes the same group element, so the choice is invisible
in proof/pk/vk bytes — ``tests/msm/test_kernel_differential.py`` pins
that cross product.
"""

from __future__ import annotations

import os

from repro.msm.glv import glv_params, msm_glv
from repro.msm.naive import msm_naive
from repro.msm.pippenger import msm_pippenger
from repro.msm.wnaf import msm_wnaf
from repro.perf import trace

__all__ = ["msm_auto", "msm_mode", "MSM_MODES"]

#: Recognized ``REPRO_MSM`` values.
MSM_MODES = ("auto", "glv", "wnaf", "pippenger", "reference", "naive")


def msm_mode():
    """The process's MSM kernel selection (validated ``REPRO_MSM``)."""
    mode = os.environ.get("REPRO_MSM", "auto").strip().lower() or "auto"
    if mode not in MSM_MODES:
        raise ValueError(
            f"REPRO_MSM must be one of {', '.join(MSM_MODES)}, got {mode!r}"
        )
    return mode


def msm_auto(group, points, scalars, window=None):
    """Compute ``sum_i scalars[i] * points[i]`` with the selected kernel.

    Same contract as every MSM kernel: affine raw-coordinate tuples
    (``None`` for infinity), plain integer scalars, identical result bytes
    whichever kernel runs.
    """
    if trace.CURRENT is not None:
        # Modeled runs must keep seeing the reference algorithm.
        return msm_pippenger(group, points, scalars, window=window)
    mode = msm_mode()
    if mode == "auto":
        if glv_params(group) is not None:
            return msm_glv(group, points, scalars, window=window)
        return msm_wnaf(group, points, scalars, window=window)
    if mode == "glv":
        return msm_glv(group, points, scalars, window=window)
    if mode == "wnaf":
        return msm_wnaf(group, points, scalars, window=window)
    if mode == "naive":
        return msm_naive(group, points, scalars)
    return msm_pippenger(group, points, scalars, window=window)

"""Pippenger (bucket-method) multi-scalar multiplication.

The proving-stage MSM kernel.  Scalars are cut into ``c``-bit windows; each
window pass scatters points into ``2^c - 1`` buckets (mixed additions), folds
the buckets with a running sum, and the window results are combined with
``c`` doublings each.

Instrumentation notes (what the paper's analyses see):

- every window pass is a *parallel* region — windows are independent, which
  is the core of the proving stage's 70%+ parallel fraction (Table VI);
- bucket accumulation emits *random-indexed* loads/stores over the bucket
  array and a *streaming* read of the point array — the mixed access pattern
  behind the proving stage's MPKI (Table II) and its 25 GB/s peak bandwidth
  demand (Table III).
"""

from __future__ import annotations

from repro.obs import metrics
from repro.perf import trace
from repro.resilience import faults
from repro.resilience import retry as resilience

__all__ = ["msm_pippenger", "optimal_window"]


#: Modeled size of the prover's live heap (see the accumulation loop).
_OPERAND_HEAP_BYTES = 2 * 1024 * 1024


def optimal_window(n):
    """Pick the window width c minimizing ``n/c + 2^c`` additions per bit.

    Matches the usual ``c ~ log2(n) - 2`` heuristic while staying sane for
    tiny inputs.
    """
    if n < 4:
        return 1
    c = max(2, n.bit_length() - 3)
    return min(c, 16)


def msm_pippenger(group, points, scalars, window=None):
    """Compute ``sum_i scalars[i] * points[i]`` with the bucket method.

    *points* are affine raw-coordinate tuples (``None`` entries and zero
    scalars are skipped), *scalars* plain integers (reduced mod group order).
    """
    if len(points) != len(scalars):
        raise ValueError(f"points/scalars length mismatch: {len(points)} vs {len(scalars)}")
    if window is not None and not 1 <= window <= 32:
        raise ValueError(f"window width must be in [1, 32], got {window}")
    order = group.order
    pairs = [
        (pt, k % order)
        for pt, k in zip(points, scalars)
        if pt is not None and k % order != 0
    ]
    if not pairs:
        return group.infinity()
    c = window or optimal_window(len(pairs))
    nbits = order.bit_length()
    n_windows = (nbits + c - 1) // c
    mask = (1 << c) - 1

    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_msm_pippenger_calls_total")
        m.inc("repro_msm_windows_total", n_windows)
        m.observe("repro_msm_points", len(pairs))
    if faults.CURRENT is not None:
        faults.CURRENT.check("msm:pippenger")

    t = trace.CURRENT
    if hasattr(group.ops, "fq"):  # G1: affine (x, y) over Fq
        point_bytes = 2 * group.ops.fq.nbytes
    else:  # G2: affine (x, y) over Fq2
        point_bytes = 4 * group.ops.tower.fq.nbytes
    # Buckets hold Jacobian points: three coordinates.
    bucket_bytes = 3 * (point_bytes // 2)
    points_base = buckets_base = heap_base = 0
    sample = 1
    if t is not None:
        points_base = t.aspace.alloc(len(pairs) * point_bytes)
        buckets_base = t.aspace.alloc((mask) * bucket_bytes)
        # The prover's live heap (witness values, coordinate temporaries,
        # GC-scattered operands): bucket accumulation touches it with poor
        # locality, which is where the proving stage's MPKI comes from
        # (Table II) — the setup's streaming walk has no equivalent.
        heap_base = t.aspace.alloc(_OPERAND_HEAP_BYTES)
        sample = t.mem_sample

    window_sums = []
    for w in range(n_windows):
        # Cooperative deadline poll between the (independent) window
        # passes — the natural preemption point of the kernel.
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        shift = w * c
        if t is None:
            buckets = [None] * mask
            for pt, k in pairs:
                digit = (k >> shift) & mask
                if digit:
                    slot = buckets[digit - 1]
                    buckets[digit - 1] = (
                        group.point_unchecked(*pt) if slot is None else slot.add_affine(*pt)
                    )
            window_sums.append(_fold_buckets(group, buckets))
        else:
            with t.region("msm_window", parallel=True, items=len(pairs)):
                # Streaming read of the point/scalar arrays once per window.
                t.mem_block(points_base, len(pairs) * point_bytes, write=False)
                buckets = [None] * mask
                for i, (pt, k) in enumerate(pairs):
                    digit = (k >> shift) & mask
                    t.op("msm_digit")
                    if digit:
                        slot = buckets[digit - 1]
                        buckets[digit - 1] = (
                            group.point_unchecked(*pt) if slot is None else slot.add_affine(*pt)
                        )
                        if i % sample == 0:
                            addr = buckets_base + (digit - 1) * bucket_bytes
                            t.mem_load(addr, bucket_bytes, weight=sample)
                            t.mem_store(addr, bucket_bytes, weight=sample)
                            t.mem_load(
                                heap_base
                                + ((i * n_windows + w) * 2654435761)
                                % _OPERAND_HEAP_BYTES,
                                32,
                                weight=sample,
                            )
                window_sums.append(_fold_buckets(group, buckets))

    # Horner combine from the most significant window down (doubling the
    # identity before the first add is a harmless no-op).
    acc = group.infinity()
    for ws in reversed(window_sums):
        for _ in range(c):
            acc = acc.double()
        acc = acc + ws
    return acc


def _fold_buckets(group, buckets):
    """Running-sum fold: ``sum_d d * bucket[d]`` in 2*(len-1) additions."""
    running = group.infinity()
    total = group.infinity()
    for slot in reversed(buckets):
        if slot is not None:
            running = running + slot
        total = total + running
    return total

"""GLV endomorphism scalar decomposition for the G1 MSM.

Both supported curves have ``j``-invariant 0 (``y^2 = x^3 + b``), so G1
carries the fast endomorphism ``phi(x, y) = (beta * x, y)`` where ``beta``
is a primitive cube root of unity in ``Fq``.  On the order-``r`` subgroup
``phi`` acts as multiplication by ``lambda``, a root of
``x^2 + x + 1 = 0 (mod r)``.  Gallant–Lambert–Vanstone: split every scalar
``k`` as ``k = k1 + lambda * k2 (mod r)`` with ``|k1|, |k2| ~ sqrt(r)``
(Babai rounding against a short lattice basis from the extended Euclidean
algorithm), map the sign of each half into a point negation, and feed the
doubled point list with *half-width* scalars to the signed-digit kernel —
which sizes its window count from the widest actual scalar, so the window
passes (and the Horner doublings) halve.

Parameters are *derived*, not hard-coded: ``lambda`` and ``beta`` come
from square roots of ``-3`` in ``Fr`` / ``Fq``, and the matching
``(beta, lambda)`` pair is selected by testing ``phi(G) == lambda * G`` on
the group generator.  Groups without the endomorphism (G2, or a hypothetical
``a != 0`` curve) get ``None`` from :func:`glv_params` and the kernel falls
back to the plain signed-digit path.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt

from repro.fields.prime_field import PrimeField
from repro.msm.wnaf import msm_wnaf
from repro.obs import metrics
from repro.perf import trace
from repro.resilience import retry as resilience

__all__ = ["GLVParams", "glv_params", "decompose_scalar", "msm_glv"]


@dataclass(frozen=True)
class GLVParams:
    """Derived endomorphism constants for one group."""

    beta: int      # primitive cube root of unity in Fq
    lam: int       # matching root of x^2 + x + 1 mod r
    v1: tuple      # short lattice vector (a1, b1): a1 + b1*lam = 0 mod r
    v2: tuple      # second short vector (a2, b2)


#: Per-process parameter cache: group name -> GLVParams | None.
#: Derivation costs two Tonelli square roots and a scalar mul; groups are
#: process-global singletons, so the memo is safe to share per process.
_PARAMS = {}


def _short_vectors(r, lam):
    """Two short lattice vectors ``(a, b)`` with ``a + b*lam = 0 (mod r)``.

    Extended-Euclid remainder sequence on ``(r, lam)`` truncated at
    ``sqrt(r)`` — the classic GLV basis construction (Guide to ECC,
    Alg. 3.74): every row satisfies ``s*r + t*lam = rem``, i.e.
    ``(rem, -t)`` is in the lattice.
    """
    sqrt_r = isqrt(r)
    rows = [(r, 0), (lam, 1)]  # (remainder, t-coefficient)
    while rows[-1][0] != 0 and rows[-1][0] >= sqrt_r:
        (r0, t0), (r1, t1) = rows[-2], rows[-1]
        q = r0 // r1
        rows.append((r0 - q * r1, t0 - q * t1))
    # rows[-1] is row l+1, the first remainder below sqrt(r); rows[-2] is
    # row l.  The second vector is the shorter of the two rows *bracketing*
    # row l+1 — row l and row l+2 (one extra division step) — either of
    # which spans a determinant-(+-r) basis with row l+1.
    (rl, tl), (rl1, tl1) = rows[-2], rows[-1]
    v1 = (rl1, -tl1)
    if rl1 != 0:
        q = rl // rl1
        rl2, tl2 = rl - q * rl1, tl - q * tl1
    else:
        rl2, tl2 = rl, tl
    if rl * rl + tl * tl <= rl2 * rl2 + tl2 * tl2:
        v2 = (rl, -tl)
    else:
        v2 = (rl2, -tl2)
    # Normalize orientation to det(v1, v2) == +r: the Babai rounding in
    # :func:`decompose_scalar` assumes it (a flipped sign would push the
    # rounded lattice point *away* from (k, 0) and blow up the halves).
    a1, b1 = v1
    a2, b2 = v2
    if a1 * b2 - a2 * b1 < 0:
        v2 = (-a2, -b2)
    return v1, v2


def glv_params(group):
    """Derive (and memoize) the GLV parameters for *group*.

    Returns ``None`` when the group does not expose the endomorphism —
    G2 (extension-field coordinates) or curves where ``-3`` is a
    non-residue.
    """
    name = group.name
    if name in _PARAMS:
        return _PARAMS[name]
    params = _derive(group)
    # codelint: ignore[RC103] -- per-process memo of pure derived constants
    _PARAMS[name] = params
    return params


def _derive(group):
    if not hasattr(group.ops, "fq"):  # G2: coordinates live in Fq2
        return None
    fq = group.ops.fq
    r = group.order
    fr = PrimeField(r, f"{group.name}.glv.fr")
    s_r = fr.sqrt(fr.reduce(-3))
    s_q = fq.sqrt(fq.reduce(-3))
    if s_r is None or s_q is None:
        return None
    inv2_r = fr.inv(2)
    inv2_q = fq.inv(2)
    lam1 = fr.mul(fr.sub(s_r, 1), inv2_r)
    lam2 = r - 1 - lam1  # the other root (roots sum to -1)
    beta1 = fq.mul(fq.sub(s_q, 1), inv2_q)
    beta2 = fq.modulus - 1 - beta1
    gen = group.generator
    gx, gy = gen.to_affine()
    for lam in (lam1, lam2):
        target = gen * lam
        for beta in (beta1, beta2):
            if group.point_unchecked(fq.mul(beta, gx), gy) == target:
                v1, v2 = _short_vectors(r, lam)
                return GLVParams(beta=beta, lam=lam, v1=v1, v2=v2)
    return None


def _round_div(a, b):
    """Nearest-integer division ``round(a / b)`` for ``b > 0``."""
    q, rem = divmod(a, b)
    if 2 * rem >= b:
        q += 1
    return q


def decompose_scalar(params, r, k):
    """Split ``k (mod r)`` into ``(k1, k2)`` with ``k1 + k2*lam = k (mod r)``.

    Babai rounding of ``(k, 0)`` against the short basis; both halves are
    bounded by roughly ``sqrt(r)`` (the property suite pins
    ``bit_length <= r.bit_length()//2 + 2``).
    """
    a1, b1 = params.v1
    a2, b2 = params.v2
    c1 = _round_div(b2 * k, r)
    c2 = _round_div(-b1 * k, r)
    k1 = k - c1 * a1 - c2 * a2
    k2 = -c1 * b1 - c2 * b2
    return k1, k2


def msm_glv(group, points, scalars, window=None):
    """MSM via GLV decomposition feeding one half-width signed-digit MSM.

    Falls back to :func:`~repro.msm.wnaf.msm_wnaf` unchanged when the
    group has no usable endomorphism (G2), so callers can route every
    group through this entry point.
    """
    params = glv_params(group)
    if params is None:
        return msm_wnaf(group, points, scalars, window=window)
    if len(points) != len(scalars):
        raise ValueError(f"points/scalars length mismatch: {len(points)} vs {len(scalars)}")
    order = group.order
    pairs = [
        (pt, k % order)
        for pt, k in zip(points, scalars)
        if pt is not None and k % order != 0
    ]
    if not pairs:
        return group.infinity()

    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_msm_glv_calls_total")
        m.inc("repro_msm_glv_decompositions_total", len(pairs))
    t = trace.CURRENT
    if t is not None:
        t.op("glv_decompose", len(pairs))

    fq = group.ops.fq
    beta = params.beta
    half_points = []
    half_scalars = []
    for i, (pt, k) in enumerate(pairs):
        # Cooperative deadline poll amortized over the decomposition loop.
        if not i & 255:
            if resilience.DEADLINE is not None:
                resilience.DEADLINE.check()
        k1, k2 = decompose_scalar(params, order, k)
        x, y = pt
        if k1 > 0:
            half_points.append(pt)
            half_scalars.append(k1)
        elif k1 < 0:
            half_points.append((x, fq.neg(y)))
            half_scalars.append(-k1)
        if k2 > 0:
            half_points.append((fq.mul(beta, x), y))
            half_scalars.append(k2)
        elif k2 < 0:
            half_points.append((fq.mul(beta, x), fq.neg(y)))
            half_scalars.append(-k2)

    return msm_wnaf(group, half_points, half_scalars, window=window)

"""Fixed-base scalar multiplication with a windowed table.

The trusted setup multiplies one base point (the generator, or ``Z(tau)/
delta`` style derived points) by thousands of distinct scalars.  A one-time
table of ``(2^w - 1)`` multiples per w-bit window reduces each subsequent
multiplication to at most ``ceil(bits/w)`` mixed additions.

The table build and the per-scalar walks are both instrumented: the large
sequential table (the reason the setup stage's loads dwarf its stores by
~10x in Fig. 5 — the table is written once and read for every scalar) is
given a real footprint in the traced address space.
"""

from __future__ import annotations

from repro.perf import trace
from repro.resilience import retry as resilience

__all__ = ["FixedBaseTable"]


class FixedBaseTable:
    """Precomputed window table for one base point.

    Parameters
    ----------
    base:
        A group :class:`~repro.curves.curve.Point`.
    width:
        Window width in bits (4 is a good default for the setup sizes the
        harness sweeps; 8 halves the adds per scalar at 16x the table).
    bits:
        Scalar bit width to support (defaults to the group order's width).
    """

    def __init__(self, base, width=4, bits=None):
        if width < 1 or width > 16:
            raise ValueError(f"window width must be in [1, 16], got {width}")
        if bits is not None and bits < 1:
            # Without this guard, bits=0 silently coerced to the default
            # (``bits or ...``) and a negative width built an *empty* table
            # whose ``mul`` returned infinity for every scalar.
            raise ValueError(f"table bit width must be >= 1, got {bits}")
        group = base.group
        self.group = group
        self.width = width
        self.bits = bits or group.order.bit_length()
        self.n_windows = (self.bits + width - 1) // width
        per_window = (1 << width) - 1

        t = trace.CURRENT
        if hasattr(group.ops, "fq"):
            point_bytes = 2 * group.ops.fq.nbytes
        else:
            point_bytes = 4 * group.ops.tower.fq.nbytes
        self._point_bytes = point_bytes
        self._table_base = 0
        if t is not None:
            self._table_base = t.malloc(self.n_windows * per_window * point_bytes)

        # table[k][d-1] holds (d * 2^(k*width)) * base, normalized to affine
        # so the per-scalar walk uses cheap mixed additions.
        table = []
        window_base = base
        region = t.region("fixed_base_table_build", parallel=True, items=self.n_windows) \
            if t is not None else None
        if region is not None:
            region.__enter__()
        try:
            for _k in range(self.n_windows):
                row = []
                acc = group.infinity()
                for _d in range(per_window):
                    acc = acc + window_base
                    row.append(acc)
                table.append([p.to_affine() for p in row])
                window_base = acc + window_base  # == 2^width * previous base
                if t is not None:
                    t.mem_block(self._table_base, per_window * point_bytes, write=True)
        finally:
            if region is not None:
                region.__exit__(None, None, None)
        self._table = table

    def mul(self, scalar):
        """Return ``scalar * base`` using at most ``n_windows`` additions."""
        # Cooperative deadline poll per scalar — one table walk is the
        # kernel's smallest unit of work (mul_many inherits the poll).
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        k = scalar % self.group.order
        if k == 0:
            return self.group.infinity()
        t = trace.CURRENT
        mask = (1 << self.width) - 1
        acc = self.group.infinity()
        per_window = mask
        for w in range(self.n_windows):
            digit = (k >> (w * self.width)) & mask
            if t is not None:
                t.op("fixed_base_digit")
            if digit:
                entry = self._table[w][digit - 1]
                if t is not None:
                    addr = self._table_base + (w * per_window + digit - 1) * self._point_bytes
                    t.mem_load(addr, self._point_bytes)
                if entry is not None:
                    acc = acc.add_affine(*entry)
        return acc

    def mul_many(self, scalars):
        """Multiply the base by every scalar (one parallel traced region)."""
        t = trace.CURRENT
        if t is None:
            return [self.mul(k) for k in scalars]
        with t.region("fixed_base_mul_many", parallel=True, items=len(scalars)):
            return [self.mul(k) for k in scalars]

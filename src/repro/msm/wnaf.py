"""Signed-digit (wNAF-window) Pippenger MSM with batch-affine buckets.

Two structural improvements over :func:`repro.msm.pippenger.msm_pippenger`,
each individually pinned by the differential suite
(``tests/msm/test_kernel_differential.py``):

- **signed digits** (:func:`repro.msm.recode.signed_windows`): window
  digits lie in ``[-(2^(c-1) - 1), 2^(c-1)]`` and a negative digit scatters
  the *negated* point (free in affine coordinates), so a window needs
  ``2^(c-1)`` buckets instead of ``2^c - 1`` — the running-sum fold, the
  expensive serial part of a window pass, halves;
- **batch-affine accumulation**
  (:func:`repro.msm.batch_affine.batch_affine_accumulate`): bucket sums are
  built from ~6-multiplication affine additions whose inversions are
  amortized by Montgomery's trick, instead of ~11-multiplication Jacobian
  mixed additions.

The kernel also sizes its window count from the widest *actual* scalar
(the reference kernel always walks ``order.bit_length()`` windows), which
is what lets the GLV wrapper (:mod:`repro.msm.glv`) cash in its half-width
decomposition by simply calling this kernel.

The result is the same group element the reference kernel computes —
bit-identical after affine normalization — for every input, including the
edge scalars (0, 1, ``order - 1``, ``>= order``) and identity points.
"""

from __future__ import annotations

from repro.msm.batch_affine import batch_affine_accumulate
from repro.msm.recode import signed_windows, signed_windows_len
from repro.obs import metrics
from repro.perf import trace
from repro.resilience import faults
from repro.resilience import retry as resilience

__all__ = ["msm_wnaf", "optimal_signed_window"]

#: Relative costs (in field-call units) of one batch-affine pair addition
#: and one fold slot (mixed + full Jacobian addition), used by the window
#: chooser below.  Rough but measured: a pair add is ~12 adapter calls, a
#: fold slot ~50.
_PAIR_ADD_COST = 12
_FOLD_SLOT_COST = 50


# codelint: ignore[RC501] -- 15-iteration arg-min over window widths, no data-sized loop
def optimal_signed_window(n, nbits):
    """Window width minimizing modeled signed-kernel work for *n* points of
    *nbits*-bit scalars.

    Unlike :func:`repro.msm.pippenger.optimal_window`, this accounts for
    the scalar width: GLV feeds half-width scalars through the kernel, and
    the best window for 2n half-width scalars is narrower than for n
    full-width ones (fewer windows amortize the per-window fold less).
    """
    best_c, best_cost = 2, None
    for c in range(2, 17):
        n_windows = (nbits + c - 1) // c + 1
        cost = n_windows * (n * _PAIR_ADD_COST + (1 << (c - 1)) * _FOLD_SLOT_COST)
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def msm_wnaf(group, points, scalars, window=None):
    """Compute ``sum_i scalars[i] * points[i]`` with signed-digit buckets.

    Same contract as the reference kernel: *points* are affine
    raw-coordinate tuples (``None`` entries and zero scalars are skipped),
    *scalars* plain integers (reduced mod the group order).
    """
    if len(points) != len(scalars):
        raise ValueError(f"points/scalars length mismatch: {len(points)} vs {len(scalars)}")
    if window is not None and not 1 <= window <= 32:
        raise ValueError(f"window width must be in [1, 32], got {window}")
    order = group.order
    pairs = [
        (pt, k % order)
        for pt, k in zip(points, scalars)
        if pt is not None and k % order != 0
    ]
    if not pairs:
        return group.infinity()
    # Window count follows the widest actual scalar (not the order): GLV
    # feeds half-width scalars through here and gets half the windows.
    nbits = max(k.bit_length() for _pt, k in pairs)
    c = window or optimal_signed_window(len(pairs), nbits)
    n_digits = signed_windows_len(nbits, c)
    half = 1 << (c - 1)

    m = metrics.CURRENT
    if m is not None:
        m.inc("repro_msm_wnaf_calls_total")
        m.inc("repro_msm_windows_total", n_digits)
        m.observe("repro_msm_points", len(pairs))
    if faults.CURRENT is not None:
        # Same fault site as the reference kernel: chaos faults shipped at
        # the MSM site fire regardless of which bucket kernel is active.
        faults.CURRENT.check("msm:pippenger")

    ops = group.ops
    neg = ops.neg
    rows = [signed_windows(k, c, n_digits) for _pt, k in pairs]

    t = trace.CURRENT
    window_sums = []
    for w in range(n_digits):
        # Cooperative deadline poll between the independent window passes,
        # like the reference kernel.
        if resilience.DEADLINE is not None:
            resilience.DEADLINE.check()
        if t is not None:
            t.op("msm_signed_digit", len(pairs))
        entries = []
        for i, (pt, _k) in enumerate(pairs):
            d = rows[i][w]
            if d > 0:
                entries.append((d, pt))
            elif d < 0:
                entries.append((-d, (pt[0], neg(pt[1]))))
        buckets = batch_affine_accumulate(group, half, entries)
        window_sums.append(_fold_affine(group, buckets))

    # Horner combine from the most significant window down (identical to
    # the reference kernel's combine step).
    acc = group.infinity()
    for ws in reversed(window_sums):
        for _ in range(c):
            acc = acc.double()
        acc = acc + ws
    return acc


def _fold_affine(group, buckets):
    """Running-sum fold over affine bucket values: ``sum_d d * bucket[d]``.

    The running sum grows by cheap mixed additions (buckets are affine),
    only the total needs full Jacobian additions.
    """
    running = group.infinity()
    total = group.infinity()
    for slot in reversed(buckets):
        if slot is not None:
            running = running.add_affine(*slot)
        total = total + running
    return total

#!/usr/bin/env python3
"""Scalability analysis: strong/weak scaling and the Amdahl/Gustafson fits.

Reproduces the paper's Fig. 6, Fig. 7 and Table VI for every stage on the
i9-13900K, from a sweep of exponentiation circuits.

    python examples/scalability_report.py [curve]
"""

import sys

from repro.harness.report import render_table
from repro.harness.runner import DEFAULT_SIZES, profile_run
from repro.perf.cpu import I9_13900K
from repro.perf.scaling import (
    DEFAULT_THREADS,
    amdahl_fit,
    gustafson_fit,
    strong_scaling,
    weak_scaling,
)
from repro.workflow import STAGES


def main():
    curve = sys.argv[1] if len(sys.argv) > 1 else "bn128"
    sizes = DEFAULT_SIZES
    print(f"Profiling {curve} at sizes {sizes} ...")
    profiles = {n: profile_run(curve, n) for n in sizes}

    # -- strong scaling at the largest size (Fig. 6) -------------------------
    big = sizes[-1]
    rows = []
    for stage in STAGES:
        sp = strong_scaling(profiles[big][stage].split, I9_13900K)
        rows.append([stage] + [sp[n] for n in DEFAULT_THREADS])
    print()
    print(render_table(
        ["stage"] + [f"t={n}" for n in DEFAULT_THREADS], rows,
        title=f"Strong scaling at n={big} on {I9_13900K.name} (Fig. 6)",
    ))

    # -- weak scaling ladder (Fig. 7) ------------------------------------------
    pairs = [(2**i, sizes[i]) for i in range(len(sizes))]
    rows = []
    ws_by_stage = {}
    for stage in STAGES:
        splits = {n: profiles[size][stage].split for n, size in pairs}
        ws = weak_scaling(splits, I9_13900K)
        ws_by_stage[stage] = ws
        rows.append([stage] + [ws[n] for n, _ in pairs])
    print()
    print(render_table(
        ["stage"] + [f"t={n}/n={s}" for n, s in pairs], rows,
        title=f"Weak scaling on {I9_13900K.name} (Fig. 7)",
    ))

    # -- Amdahl / Gustafson decomposition (Table VI) --------------------------------
    rows = []
    for stage in STAGES:
        ss_serials = []
        for n in sizes:
            sp = strong_scaling(profiles[n][stage].split, I9_13900K)
            ss_serials.append(amdahl_fit(sp)[0])
        ss = sum(ss_serials) / len(ss_serials)
        ws_serial, _ = gustafson_fit(ws_by_stage[stage])
        rows.append([stage, 100 * ss, 100 * (1 - ss),
                     100 * ws_serial, 100 * (1 - ws_serial)])
    print()
    print(render_table(
        ["stage", "SS serial %", "SS parallel %", "WS serial %", "WS parallel %"],
        rows, title="Serial/parallel decomposition (Table VI)", floatfmt=".1f",
    ))
    print("\n=> the proving stage is the most parallel; heterogeneous hardware "
          "(e.g. GPUs) can absorb it (Key Takeaway 5).")


if __name__ == "__main__":
    main()

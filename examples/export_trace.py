#!/usr/bin/env python3
"""Export a stage trace for external tools.

Traces the proving stage and writes:

- ``results/proving_trace.json`` — Chrome Trace Event Format; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev to browse the region
  tree with per-region instruction/cycle annotations (the closest thing
  to opening a VTune recording of the stage);
- ``results/proving_counters.csv`` — flat primitive counters.

    python examples/export_trace.py [stage] [n_constraints]
"""

import os
import sys

from repro.curves import get_curve
from repro.harness.circuits import build_exponentiate
from repro.perf.export import counters_to_csv, to_chrome_trace
from repro.perf.trace import Tracer
from repro.workflow import STAGES, Workflow


def main():
    stage = sys.argv[1] if len(sys.argv) > 1 else "proving"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    if stage not in STAGES:
        raise SystemExit(f"unknown stage {stage!r}; choose from {STAGES}")

    curve = get_curve("bn128")
    builder, inputs = build_exponentiate(curve, size)
    wf = Workflow(curve, builder, inputs, seed=0)
    tracer = Tracer(label=f"{stage}@{size}")
    # Run the pipeline in order up to (and including) the chosen stage,
    # tracing only that stage.
    for s in STAGES:
        wf.run_stage(s, tracer if s == stage else None)
        if s == stage:
            break
    print(f"traced '{stage}' at n={size}: {tracer.clock} primitives, "
          f"{len(tracer.mem_events)} memory events")

    os.makedirs("results", exist_ok=True)
    json_path = os.path.join("results", f"{stage}_trace.json")
    csv_path = os.path.join("results", f"{stage}_counters.csv")
    with open(json_path, "w") as f:
        f.write(to_chrome_trace(tracer))
    with open(csv_path, "w") as f:
        f.write(counters_to_csv(tracer))
    print(f"wrote {json_path} (open in chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {csv_path}")

    regions = sorted(
        ((r.name, sum(r.counts.values())) for r in tracer.iter_regions()),
        key=lambda kv: kv[1], reverse=True,
    )
    print("\nbusiest regions (by primitive count):")
    for name, count in regions[:8]:
        print(f"  {name:28s} {count:>12,}")


if __name__ == "__main__":
    main()

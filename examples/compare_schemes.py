#!/usr/bin/env python3
"""Compare three proof systems on the same statement family.

Proves knowledge of ``x`` with ``y = x^n`` three ways and contrasts the
trade-offs the paper's background section describes:

- **Schnorr + Fiat-Shamir** (interactive ZKP made non-interactive): only
  proves discrete-log statements, but is tiny and fast;
- **Groth16**: general statements, constant 3-element proofs, per-circuit
  trusted setup — the scheme the paper profiles;
- **PLONK**: general statements, universal setup, bigger/slower proofs —
  the alternative snarkjs scheme the paper cites as ~2x slower at proving.

    python examples/compare_schemes.py [n_gates]
"""

import random
import sys
import time

from repro.circuit import CircuitBuilder, compile_circuit, gadgets
from repro.curves import get_curve
from repro.groth16 import generate_witness, prove, public_inputs, setup, verify
from repro.harness.report import render_table
from repro.plonk import PlonkCircuit, plonk_prove, plonk_setup, plonk_verify
from repro.plonk.circuit import compile_plonk
from repro.sigma import fiat_shamir_prove, fiat_shamir_verify


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    curve = get_curve("bn128")
    fr = curve.fr
    rng = random.Random(13)
    x_secret = 0xC0FFEE
    rows = []

    # -- Schnorr (knowledge of discrete log, not of x^n) ----------------------
    t0 = time.perf_counter()
    public, sproof = fiat_shamir_prove(curve.g1, x_secret, rng,
                                       message=b"compare_schemes")
    t_prove = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert fiat_shamir_verify(curve.g1, public, sproof, message=b"compare_schemes")
    t_verify = time.perf_counter() - t0
    rows.append(["Schnorr+FS", "dlog only", "none", 96 + 64,
                 0.0, t_prove, t_verify])

    # -- Groth16 ------------------------------------------------------------------
    b = CircuitBuilder("pow", fr)
    xs = b.private_input("x")
    b.output(gadgets.exponentiate(b, xs, n), "y")
    circuit = compile_circuit(b)
    t0 = time.perf_counter()
    pk, vk = setup(curve, circuit, rng)
    t_setup = time.perf_counter() - t0
    witness = generate_witness(circuit, {"x": x_secret})
    t0 = time.perf_counter()
    gproof = prove(pk, circuit, witness, rng)
    t_prove = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert verify(vk, gproof, public_inputs(circuit, witness))
    t_verify = time.perf_counter() - t0
    rows.append(["Groth16", "any circuit", "per-circuit", gproof.size_bytes(),
                 t_setup, t_prove, t_verify])

    # -- PLONK -----------------------------------------------------------------------
    pc = PlonkCircuit(fr)
    y_var = pc.public_input()
    x_var = pc.new_var()
    acc = x_var
    for _ in range(n - 1):
        acc = pc.mul_gate(acc, x_var)
    pc.assert_equal(acc, y_var)
    compiled = compile_plonk(pc)
    t0 = time.perf_counter()
    pre = plonk_setup(curve, compiled, rng)
    t_setup = time.perf_counter() - t0
    values = pc.full_assignment({x_var: x_secret,
                                 y_var: pow(x_secret, n, fr.modulus)})
    t0 = time.perf_counter()
    pproof = plonk_prove(pre, values, rng)
    t_prove = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert plonk_verify(pre, pproof, [values[y_var]])
    t_verify = time.perf_counter() - t0
    rows.append(["PLONK", "any circuit", "universal", pproof.size_bytes(),
                 t_setup, t_prove, t_verify])

    print()
    print(render_table(
        ["scheme", "statements", "trusted setup", "proof bytes",
         "setup s", "prove s", "verify s"],
        rows,
        title=f"Proof-system comparison, y = x^{n} on bn128",
        floatfmt=".3f",
    ))
    print("\nGroth16's small constant proofs explain its de-facto-standard "
          "status (paper Section IV-A); PLONK trades proving speed for the "
          "universal setup.")


if __name__ == "__main__":
    main()

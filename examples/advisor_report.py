#!/usr/bin/env python3
"""Print the optimization advisor's guidance for every protocol stage.

The paper closes each analysis with a Key Takeaway;
:mod:`repro.perf.advisor` applies the same reasoning mechanically to
*measured* stage profiles, so the recommendations below are derived from
this run's traces, not copied from the paper.

    python examples/advisor_report.py [n_constraints] [cpu]
"""

import sys

from repro.harness.runner import profile_run
from repro.perf.advisor import advise
from repro.workflow import STAGES


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    cpu = sys.argv[2] if len(sys.argv) > 2 else "i9-13900K"
    print(f"Profiling all stages (bn128, n={size}) and advising for {cpu} ...")
    profiles = profile_run("bn128", size)

    for stage in STAGES:
        recs = advise(profiles[stage], cpu_name=cpu)
        print(f"\n=== {stage} ===")
        if not recs:
            print("  (no findings above thresholds)")
        for rec in recs:
            print(f"  {rec}")

    takeaways = sorted({r.takeaway for s in STAGES
                        for r in advise(profiles[s], cpu_name=cpu) if r.takeaway})
    print(f"\nPaper Key Takeaways instantiated by this run: {takeaways}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: prove knowledge of x such that y = x^e, end to end.

Runs the paper's five-stage zk-SNARK workflow (Fig. 1) — compile, setup,
witness, proving, verifying — on both evaluation curves, printing the
artifacts each stage hands to the next.

    python examples/quickstart.py [exponent]
"""

import random
import sys
import time

from repro.circuit import CircuitBuilder, compile_circuit, gadgets
from repro.curves import CURVE_NAMES, get_curve
from repro.groth16 import generate_witness, prove, public_inputs, setup, verify


def run(curve_name, exponent, x_value=3):
    curve = get_curve(curve_name)
    print(f"\n=== {curve_name} : prove knowledge of x with y = x^{exponent} ===")

    # -- compile: author the circuit and lower it to R1CS -------------------
    builder = CircuitBuilder(f"pow{exponent}", curve.fr)
    x = builder.private_input("x")
    y = gadgets.exponentiate(builder, x, exponent)
    builder.output(y, "y")
    t0 = time.perf_counter()
    circuit = compile_circuit(builder)
    print(f"compile   : {circuit.r1cs!r}  ({time.perf_counter() - t0:.3f}s)")

    # -- setup: trusted-setup keys ------------------------------------------
    rng = random.Random(2024)
    t0 = time.perf_counter()
    pk, vk = setup(curve, circuit, rng)
    print(f"setup     : pk ~{pk.size_bytes() // 1024} KiB, "
          f"vk {vk.size_bytes()} B  ({time.perf_counter() - t0:.3f}s)")

    # -- witness: evaluate the circuit on the prover's inputs ----------------
    t0 = time.perf_counter()
    witness = generate_witness(circuit, {"x": x_value})
    publics = public_inputs(circuit, witness)
    assert circuit.r1cs.is_satisfied(witness)
    print(f"witness   : {len(witness)} wires, public output y = {publics[0]}  "
          f"({time.perf_counter() - t0:.3f}s)")

    # -- proving ----------------------------------------------------------------
    t0 = time.perf_counter()
    proof = prove(pk, circuit, witness, rng)
    print(f"proving   : {proof.size_bytes()} byte proof  "
          f"({time.perf_counter() - t0:.3f}s)")

    # -- verifying ----------------------------------------------------------------
    t0 = time.perf_counter()
    ok = verify(vk, proof, publics)
    print(f"verifying : {'ACCEPT' if ok else 'REJECT'}  "
          f"({time.perf_counter() - t0:.3f}s)")
    assert ok

    # The verifier rejects a forged statement.
    assert not verify(vk, proof, [(publics[0] + 1) % curve.fr.modulus])
    print("soundness : tampered statement rejected")


def main():
    exponent = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    for curve_name in CURVE_NAMES:
        run(curve_name, exponent)
    print("\nAll proofs verified on both curves.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Key Takeaway 1: the same ZKP workload classifies differently per CPU.

Runs every protocol stage once and prints the top-down classification grid
— the reproduction of the paper's headline observation that execution-time
measurement alone is insufficient and per-microarchitecture analysis is
needed (e.g. compile is front-end bound on the i7 but back-end bound on
the i5/i9).

    python examples/compare_cpus.py [n_constraints] [curve]
"""

import sys

from repro.harness.report import render_table
from repro.harness.runner import profile_run
from repro.perf.cpu import ALL_CPUS
from repro.workflow import STAGES

SHORT = {"frontend": "FE", "backend": "BE", "bad_speculation": "BadSpec",
         "retiring": "Retire"}


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    curve = sys.argv[2] if len(sys.argv) > 2 else "bn128"
    print(f"Profiling all five stages ({curve}, n={size}) ...")
    profiles = profile_run(curve, size)

    rows = []
    for stage in STAGES:
        row = [stage]
        for spec in ALL_CPUS:
            td = profiles[stage].view(spec.name).topdown
            row.append(f"{SHORT[td.classification]} "
                       f"(FE {td.frontend:.0%}/BE {td.backend:.0%})")
        rows.append(row)

    print()
    print(render_table(
        ["stage"] + [spec.name for spec in ALL_CPUS], rows,
        title="Dominant pipeline-slot category per stage per CPU (Fig. 4)",
    ))

    divergent = [
        stage for stage in STAGES
        if len({profiles[stage].view(s.name).topdown.classification
                for s in ALL_CPUS}) > 1
    ]
    print(f"\nStages classified differently across CPUs: {divergent}")
    print("=> evaluating execution time alone is insufficient; optimizations "
          "must target each microarchitecture (Key Takeaway 1).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Author a custom circuit with the DSL, prove it, then characterize it.

Builds a small "private credential" statement — *I know a preimage whose
MiMC digest is D, and my age is in [18, 128)* — proves it with Groth16,
and runs the four-analysis framework over its proving stage, showing the
methodology applies beyond the paper's exponentiation benchmark.

    python examples/custom_circuit.py
"""

import random

from repro.circuit import CircuitBuilder, compile_circuit, gadgets
from repro.curves import get_curve
from repro.groth16 import generate_witness, prove, public_inputs, setup, verify
from repro.perf.analysis import analyze_stage
from repro.perf.trace import Tracer, tracing


def build_credential_circuit(curve):
    b = CircuitBuilder("credential", curve.fr)
    secret = b.private_input("secret")
    age = b.private_input("age")
    min_age = b.public_input("min_age")

    # The credential digest is public; the preimage stays private.
    digest = gadgets.mimc_hash_chain(b, [secret, age])
    b.output(digest, "digest")

    # 18 <= age < 2^7, without revealing the age.
    gadgets.num_to_bits(b, age, 7)
    old_enough = gadgets.logical_not(b, gadgets.less_than(b, age, min_age, 7))
    b.assert_equal(old_enough, b.constant(1))
    return b


def main():
    curve = get_curve("bn128")
    builder = build_credential_circuit(curve)
    circuit = compile_circuit(builder)
    print(f"credential circuit: {circuit.r1cs!r}")

    rng = random.Random(7)
    pk, vk = setup(curve, circuit, rng)
    inputs = {"secret": 0xDEADBEEF, "age": 42, "min_age": 18}
    witness = generate_witness(circuit, inputs)
    assert circuit.r1cs.is_satisfied(witness)
    proof = prove(pk, circuit, witness, rng)
    publics = public_inputs(circuit, witness)
    assert verify(vk, proof, publics)
    print(f"proved age >= 18 without revealing age; digest = {publics[1] % 10**12}... "
          f"({proof.size_bytes()} byte proof)")

    # An under-age witness cannot satisfy the system.
    bad = generate_witness(circuit, {**inputs, "age": 12})
    assert not circuit.r1cs.is_satisfied(bad)
    print("under-age witness rejected by the constraint system")

    # -- characterize this circuit's proving stage ---------------------------
    tracer = Tracer(label="credential/proving")
    with tracing(tracer):
        prove(pk, circuit, witness, rng)
    profile = analyze_stage(tracer, stage="proving", curve="bn128",
                            size=circuit.n_constraints)
    mix = profile.opcode_mix
    print(f"\nproving-stage characterization of the custom circuit:")
    print(f"  instructions : {profile.instructions:.3g}")
    print(f"  opcode mix   : {mix.compute_pct:.1f}/{mix.control_pct:.1f}/"
          f"{mix.data_pct:.1f} (comp/ctrl/data) -> {mix.intensive}-intensive")
    print(f"  top hotspot  : {profile.functions.top(1)[0].function} "
          f"({100 * profile.functions.top(1)[0].share:.1f}% of CPU time)")
    for cpu in ("i7-8650U", "i9-13900K"):
        td = profile.view(cpu).topdown
        print(f"  {cpu:10s} : {td.classification} "
              f"(FE {td.frontend:.0%}, BE {td.backend:.0%})")


if __name__ == "__main__":
    main()

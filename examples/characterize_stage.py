#!/usr/bin/env python3
"""Run the paper's full four-analysis framework (Fig. 3) on one stage.

Traces the chosen protocol stage of the exponentiation workload and prints
its top-down classification, memory behaviour, code composition and
scalability decomposition on each of the three evaluation CPUs.

    python examples/characterize_stage.py [stage] [n_constraints] [curve]

e.g. ``python examples/characterize_stage.py proving 512 bn128``.
"""

import sys

from repro.harness.report import render_table
from repro.harness.runner import profile_run
from repro.perf.cpu import ALL_CPUS, I9_13900K
from repro.perf.scaling import amdahl_fit, strong_scaling
from repro.workflow import STAGES


def main():
    stage = sys.argv[1] if len(sys.argv) > 1 else "proving"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    curve = sys.argv[3] if len(sys.argv) > 3 else "bn128"
    if stage not in STAGES:
        raise SystemExit(f"unknown stage {stage!r}; choose from {STAGES}")

    print(f"Characterizing the '{stage}' stage ({curve}, n={size}) ...")
    profile = profile_run(curve, size)[stage]

    # -- top-down microarchitecture analysis --------------------------------
    rows = []
    for spec in ALL_CPUS:
        td = profile.view(spec.name).topdown
        rows.append([
            spec.name, 100 * td.frontend, 100 * td.bad_speculation,
            100 * td.backend, 100 * td.retiring, td.classification,
        ])
    print()
    print(render_table(
        ["CPU", "FE%", "BadSpec%", "BE%", "Retire%", "classification"],
        rows, title="Top-down analysis", floatfmt=".1f",
    ))

    # -- memory analysis ---------------------------------------------------------
    rows = []
    for spec in ALL_CPUS:
        v = profile.view(spec.name)
        rows.append([spec.name, v.load_mpki, v.bandwidth.max_gbps,
                     v.traffic_bytes / 1e6])
    print()
    print(render_table(
        ["CPU", "LLC load MPKI", "max BW (GB/s)", "DRAM traffic (MB)"],
        rows, title="Memory analysis", floatfmt=".3f",
    ))
    print(f"\narchitectural loads: {profile.loads:.3g}   "
          f"stores: {profile.stores:.3g}   "
          f"(ratio {profile.loads / profile.stores:.1f})")

    # -- code analysis ---------------------------------------------------------------
    mix = profile.opcode_mix
    print(f"\nopcode mix: compute {mix.compute_pct:.1f}% / "
          f"control {mix.control_pct:.1f}% / data {mix.data_pct:.1f}%  "
          f"-> {mix.intensive}-intensive")
    rows = [[h.function, 100 * h.share, h.description]
            for h in profile.functions.top(6)]
    print()
    print(render_table(["function", "CPU time %", "description"], rows,
                       title="Hotspots (VTune view)", floatfmt=".1f"))

    # -- scalability analysis ------------------------------------------------------------
    sp = strong_scaling(profile.split, I9_13900K)
    serial, parallel = amdahl_fit(sp)
    print(f"\nstrong scaling on {I9_13900K.name}: " +
          ", ".join(f"t={n}:{s:.2f}x" for n, s in sp.items()))
    print(f"Amdahl fit: serial {100 * serial:.1f}% / parallel {100 * parallel:.1f}%  "
          f"(structural parallel share: {100 * profile.split.parallel_fraction:.1f}%)")


if __name__ == "__main__":
    main()

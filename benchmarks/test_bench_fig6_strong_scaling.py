"""Fig. 6 — strong scaling on the i9 (Speedup_SS vs thread count).

Paper claims asserted:

- setup and proving scale best at the largest constraint size;
- the proving stage keeps gaining past 24 threads (its curve does not
  saturate where the others do);
- compile and witness saturate early (~2x) and then *regress* at high
  thread counts for small circuits (the paper's 2^10-at-24-threads
  observation);
- the verifying stage's curve is (near-)flat and independent of size.
"""

from repro.harness.experiments import fig6_strong_scaling


def test_fig6_strong_scaling(benchmark, sweep, emit, sizes):
    result = benchmark.pedantic(
        lambda: fig6_strong_scaling(sweep), rounds=1, iterations=1
    )
    emit(result)
    sp = result.extras["speedups"]
    threads = result.extras["threads"]
    big, small = sizes[-1], sizes[0]

    # Proving scales far better than every other stage at the top size.
    best = {stage: max(sp[(stage, big)].values())
            for stage in ("compile", "setup", "witness", "proving", "verifying")}
    assert best["proving"] == max(best.values())
    assert best["proving"] > 4.0
    assert best["proving"] > 2 * best["compile"]

    # Proving keeps gaining past 24 threads; paper: "does not saturate".
    assert sp[("proving", big)][32] > sp[("proving", big)][16]

    # Compile and witness saturate low and regress at high thread counts
    # for small circuits.
    for stage in ("compile", "witness"):
        curve = sp[(stage, small)]
        assert max(curve.values()) < 3.0, stage
        assert curve[32] < max(curve.values()), stage
        assert curve[24] < curve[12], stage

    # Verifying: modest, size-independent curve.
    v_small, v_big = sp[("verifying", small)], sp[("verifying", big)]
    for n in threads:
        assert abs(v_small[n] - v_big[n]) / max(v_big[n], 1e-9) < 0.05, n

    # Speedup at one thread is exactly 1 everywhere.
    for key, curve in sp.items():
        assert abs(curve[1] - 1.0) < 1e-9, key

"""Table II — LLC load MPKI per stage (max across constraint sizes).

Paper claims asserted:

- the witness and proving stages show the highest MPKIs (paper maxima:
  1.03 witness on i9-BLS, 0.48 proving on i5-BN);
- the setup stage has the lowest MPKI of all stages (paper: 0.03-0.08);
- magnitudes land in the sub-1 MPKI regime the paper reports.
"""

from repro.harness.experiments import table2_mpki

CPUS = ("i7", "i5", "i9")
CURVES = ("BN", "BLS")


def test_table2_mpki(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: table2_mpki(sweep), rounds=1, iterations=1)
    emit(result)
    mpki = result.extras["mpki"]

    for cpu in CPUS:
        for ec in CURVES:
            col = {stage: mpki[(stage, cpu, ec)] for stage in
                   ("compile", "setup", "witness", "proving", "verifying")}
            # Setup is the smallest everywhere.
            assert col["setup"] == min(col.values()), (cpu, ec, col)
            # Witness or proving tops the column.
            top = max(col, key=col.get)
            assert top in ("witness", "proving"), (cpu, ec, col)
            # Setup at least 5x below the leader (paper: ~20x).
            assert col["setup"] * 5 < col[top], (cpu, ec)

    # Magnitude sanity: everything in the paper's 0.0x .. ~1 MPKI regime.
    assert all(0.0 <= v < 2.0 for v in mpki.values())
    # The global maximum is a witness or proving cell, like the paper's 1.03.
    stage_of_max = max(mpki, key=mpki.get)[0]
    assert stage_of_max in ("witness", "proving")

"""Ablation — CRT big-integer representation (Key Takeaway 3).

The paper recommends re-representing big integers through the Chinese
Remainder Theorem "converting bigint numbers to a set of int numbers,
increasing parallel computation".  This bench quantifies exactly that on
our field sizes: the dependency critical path of one multiplication
collapses from a limbs^2 carry chain to a single lane-parallel word
multiply, at the cost of a reconstruction step when leaving the domain.
"""

from repro.fields import BLS12_381_FQ, BN254_FQ
from repro.fields.crt import RNSContext
from repro.harness.report import render_table


def test_ablation_crt_parallelism(benchmark, capsys):
    def build():
        return {f.name: RNSContext(f) for f in (BN254_FQ, BLS12_381_FQ)}

    contexts = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for name, ctx in contexts.items():
        cost = ctx.cost_summary()
        rows.append([
            name, ctx.field.limbs, cost["lanes"],
            cost["direct_word_muls"], cost["direct_critical_path_muls"],
            cost["rns_word_muls"], cost["rns_critical_path_muls"],
            cost["reconstruction_word_ops"],
        ])
    with capsys.disabled():
        print()
        print(render_table(
            ["field", "limbs", "CRT lanes", "direct muls", "direct path",
             "CRT muls", "CRT path", "reconstruct ops"],
            rows, title="[Ablation-CRT] one multiplication, direct vs CRT lanes",
        ))

    for name, ctx in contexts.items():
        # Correctness on this field.
        import random

        r = random.Random(5)
        for _ in range(5):
            x, y = ctx.field.rand(r), ctx.field.rand(r)
            assert ctx.field_mul(x, y) == ctx.field.mul(x, y), name
        cost = ctx.cost_summary()
        # Key Takeaway 3's claim: the critical path collapses (>=16x here),
        # enabling lane-parallel hardware.
        speedup = cost["direct_critical_path_muls"] / cost["rns_critical_path_muls"]
        assert speedup >= 16, name
        # And the total multiply count does not explode.
        assert cost["rns_word_muls"] <= cost["direct_word_muls"], name

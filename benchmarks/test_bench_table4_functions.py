"""Table IV — time-consuming functions per stage (VTune hotspot view).

Paper: big-integer computation (bigint), dynamic memory allocation
(malloc / heap allocation), data movement (memcpy) and the page-fault
handler dominate CPU time; in compile malloc ~12% and memcpy ~8%;
bigint is a top hotspot of proving/verifying.

Claims asserted: the same function families appear as hotspots, with the
compile stage's malloc/memcpy shares in the paper's ~10% band and bigint
leading the cryptographic stages.
"""

from repro.harness.experiments import table4_functions


def test_table4_functions(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: table4_functions(sweep), rounds=1, iterations=1)
    emit(result)
    shares = result.extras["shares"]

    # Compile: malloc ~12%, memcpy ~8% (paper's headline numbers).
    assert 0.06 <= shares["compile"]["malloc"] <= 0.25
    assert 0.04 <= shares["compile"]["memcpy"] <= 0.20
    assert shares["compile"].get("bigint", 0) > 0.02
    assert shares["compile"].get("heap allocation", 0) > 0.0

    # bigint dominates the cryptographic stages (setup/proving/verifying).
    for stage in ("setup", "proving", "verifying"):
        top = max(shares[stage], key=shares[stage].get)
        assert top == "bigint", (stage, top)

    # The witness stage is interpreter-dominated (WASM calculator).
    top_witness = max(shares["witness"], key=shares["witness"].get)
    assert top_witness == "interpreter"

    # The page-fault handler shows up as a measurable witness hotspot.
    assert shares["witness"].get("page fault exception handler", 0) > 0.01

    # memcpy registers in the proving stage's profile (paper: ~10%).
    assert shares["proving"].get("memcpy", 0) > 0.0

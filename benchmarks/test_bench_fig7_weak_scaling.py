"""Fig. 7 — weak scaling on the i9 (threads and constraints double together).

Paper claims asserted:

- witness and verifying show an approximately linear (or better)
  Speedup_WS — their execution time is independent of the constraint
  count, so the scaling factor drives the curve;
- proving is more (weak-)scalable than setup as size grows;
- setup's curve flattens early (its serial G2/serialization work grows
  with the problem).
"""

from repro.harness.experiments import fig7_weak_scaling


def test_fig7_weak_scaling(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: fig7_weak_scaling(sweep), rounds=1, iterations=1)
    emit(result)
    sp = result.extras["speedups"]
    pairs = result.extras["pairs"]
    top_n = pairs[-1][0]

    # Witness and verifying: at least linear in the scaling factor.
    for stage in ("witness", "verifying"):
        for n, _size in pairs[1:]:
            assert sp[stage][n] >= 0.9 * n, (stage, n)

    # Proving beats setup from the second doubling on (the first point is
    # fixed-cost dominated for both) and by >2x at the top of the ladder.
    for n, _size in pairs[2:]:
        assert sp["proving"][n] > sp["setup"][n], n
    assert sp["proving"][top_n] > 2 * sp["setup"][top_n]

    # Setup flattens: its last doubling gains <15%.
    n_prev = pairs[-2][0]
    assert sp["setup"][top_n] / sp["setup"][n_prev] < 1.15

    # Proving is still growing at the end of the ladder.
    assert sp["proving"][top_n] / sp["proving"][n_prev] > 1.25

    # Baselines are exactly 1.
    for stage, curve in sp.items():
        assert abs(curve[1] - 1.0) < 1e-9, stage

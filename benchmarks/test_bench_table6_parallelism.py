"""Table VI — serial/parallel decomposition (Amdahl + Gustafson fits, i9).

Paper claims asserted:

- the proving stage has the highest parallel fraction under strong
  scaling (~72%, Key Takeaway 5) — higher than compile and setup;
- under weak scaling, witness and verifying fit to >90% parallel (their
  constant execution time makes Speedup_WS track the scaling factor);
- under weak scaling, proving has ~3x the parallelism of setup;
- all fits are valid percentages.
"""

from repro.harness.experiments import table6_parallelism


def test_table6_parallelism(benchmark, sweep, emit):
    result = benchmark.pedantic(
        lambda: table6_parallelism(sweep), rounds=1, iterations=1
    )
    emit(result)
    fits = result.extras["fits"]

    for ec in ("BN", "BLS"):
        ss_par = {stage: fits[(stage, ec)]["ss_parallel"]
                  for stage in ("compile", "setup", "witness", "proving", "verifying")}
        ws_par = {stage: fits[(stage, ec)]["ws_parallel"]
                  for stage in ss_par}

        # Proving: the most SS-parallel stage (paper: 68.9-72.7%).
        assert ss_par["proving"] == max(ss_par.values()), (ec, ss_par)
        assert ss_par["proving"] > 60.0, ec
        # ... clearly ahead of compile and setup.
        assert ss_par["proving"] > ss_par["setup"] + 20, ec
        assert ss_par["proving"] > ss_par["compile"] + 20, ec

        # WS: witness and verifying fit to >90% parallel (paper: 92-99%).
        assert ws_par["witness"] > 90.0, ec
        assert ws_par["verifying"] > 90.0, ec

        # WS: proving ~3x setup's parallelism (paper: ~70% vs ~25%).
        assert ws_par["proving"] > 3 * ws_par["setup"], ec

        # Everything is a sane percentage and serial+parallel == 100.
        for stage in ss_par:
            row = fits[(stage, ec)]
            assert abs(row["ss_serial"] + row["ss_parallel"] - 100.0) < 1e-6
            assert abs(row["ws_serial"] + row["ws_parallel"] - 100.0) < 1e-6
            for v in row.values():
                assert 0.0 <= v <= 100.0

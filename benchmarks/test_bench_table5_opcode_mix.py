"""Table V — opcode-class percentages (DynamoRIO view).

Paper (BN/BLS averages): setup 42.6/20.2/37.2, proving 41.0/22.7/36.4 and
verifying 46.7/24.8/28.5 are compute-intensive; compile (32.7/29.0/38.3)
is data-flow intensive; witness (36.0/29.5/34.6) is the most control-flow
intensive stage.  Key Takeaway 4: proving has >30% data-movement opcodes.
"""

from repro.harness.experiments import table5_opcode_mix
from repro.workflow import STAGES


def test_table5_opcode_mix(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: table5_opcode_mix(sweep), rounds=1, iterations=1)
    emit(result)
    mix = result.extras["mix"]

    for ec in ("BN", "BLS"):
        ctrl = {stage: mix[(ec, stage)][1] for stage in STAGES}
        data = {stage: mix[(ec, stage)][2] for stage in STAGES}

        # setup / proving / verifying: compute is the dominant class.
        for stage in ("setup", "proving", "verifying"):
            c, t, d = mix[(ec, stage)]
            assert c == max(c, t, d), (ec, stage)
            assert 35.0 <= c <= 60.0, (ec, stage, c)

        # compile: data-flow intensive.
        c, t, d = mix[(ec, "compile")]
        assert d == max(c, t, d), (ec, "compile")
        assert d > 35.0

        # witness: the most control-flow-heavy stage of the five.
        assert ctrl["witness"] == max(ctrl.values()), ec
        assert ctrl["witness"] > 25.0

        # Key Takeaway 4: proving has >30% data-movement instructions.
        assert data["proving"] > 30.0, ec

        # Each row is a percentage distribution.
        for stage in STAGES:
            assert abs(sum(mix[(ec, stage)]) - 100.0) < 0.5, (ec, stage)


def test_table5_curves_similar(benchmark, sweep):
    """BN vs BLS mixes differ by a few points at most (paper Table V)."""
    result = benchmark.pedantic(lambda: table5_opcode_mix(sweep), rounds=1, iterations=1)
    mix = result.extras["mix"]
    for stage in STAGES:
        bn = mix[("BN", stage)]
        bls = mix[("BLS", stage)]
        for a, b in zip(bn, bls):
            assert abs(a - b) < 15.0, stage

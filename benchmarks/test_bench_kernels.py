"""Micro-benchmarks of the cryptographic kernels (wall-clock, pytest-benchmark).

Not a paper artifact — these time the substrate itself so regressions in
the pure-Python kernels are visible: field multiply, curve operations,
NTT, Pippenger MSM, pairing, and the five protocol stages end-to-end.
"""

import random

import pytest

from repro.curves import BN128, PairingEngine
from repro.harness.circuits import build_exponentiate
from repro.msm import msm_pippenger
from repro.poly import EvaluationDomain, ntt
from repro.workflow import Workflow

FR = BN128.fr
FQ = BN128.fq


@pytest.fixture(scope="module")
def rng():
    return random.Random(9)


def test_field_mul(benchmark, rng):
    a, b = FQ.rand(rng), FQ.rand(rng)
    benchmark(FQ.mul, a, b)


def test_field_inv(benchmark, rng):
    a = FQ.rand_nonzero(rng)
    benchmark(FQ.inv, a)


def test_g1_add(benchmark, rng):
    P = BN128.g1.random_point(rng)
    Q = BN128.g1.random_point(rng)
    benchmark(lambda: P + Q)


def test_g1_scalar_mul(benchmark, rng):
    P = BN128.g1.random_point(rng)
    k = rng.randrange(BN128.fr.modulus)
    benchmark(lambda: P * k)


def test_g2_add(benchmark, rng):
    P = BN128.g2.random_point(rng)
    Q = BN128.g2.random_point(rng)
    benchmark(lambda: P + Q)


def test_ntt_1024(benchmark, rng):
    domain = EvaluationDomain(FR, 1024)
    coeffs = [FR.rand(rng) for _ in range(1024)]
    benchmark(ntt, FR, coeffs, domain)


def test_msm_pippenger_256(benchmark, rng):
    g = BN128.g1
    points = [(g.generator * rng.randrange(1, 1 << 30)).to_affine() for _ in range(256)]
    scalars = [rng.randrange(g.order) for _ in range(256)]
    benchmark.pedantic(msm_pippenger, args=(g, points, scalars), rounds=3, iterations=1)


def test_pairing(benchmark):
    eng = PairingEngine(BN128)
    P, Q = BN128.g1.generator, BN128.g2.generator
    benchmark.pedantic(eng.pairing, args=(P, Q), rounds=3, iterations=1)


@pytest.mark.parametrize("stage", ["compile", "setup", "witness", "proving", "verifying"])
def test_stage_wall_clock(benchmark, stage):
    """Untraced wall time of each protocol stage at n=256 (BN128)."""

    def run():
        builder, inputs = build_exponentiate(BN128, 256)
        wf = Workflow(BN128, builder, inputs, seed=0)
        for s in ("compile", "setup", "witness", "proving", "verifying"):
            res = wf.run_stage(s)
            if s == stage:
                return res.elapsed

    benchmark.pedantic(run, rounds=1, iterations=1)

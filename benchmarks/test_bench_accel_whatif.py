"""Extension bench — accelerator what-if projections (paper Section I).

The paper motivates whole-protocol analysis with PipeZK: ~200x speedup on
its two modules, but only ~5x on the targeted protocol.  This bench runs
the same arithmetic over our traced profiles for three accelerator shapes
and asserts the gap the paper reports: module speedups in the hundreds
collapse to single-digit protocol speedups while untouched stages become
the bottleneck.
"""

from repro.harness.report import render_table
from repro.perf.accel import AcceleratorSpec, project_protocol
from repro.harness.runner import profile_run

ACCELERATORS = [
    AcceleratorSpec(
        "PipeZK-like ASIC (MSM+NTT 200x)",
        {"bigint": 200.0, "msm": 200.0, "fft": 200.0, "ec": 200.0},
        offload_overhead_fraction=0.02,
    ),
    AcceleratorSpec(
        "GPU offload (crypto 25x)",
        {"bigint": 25.0, "msm": 25.0, "fft": 25.0, "ec": 25.0},
        offload_overhead_fraction=0.05,
    ),
    AcceleratorSpec(
        "CRT bigint unit (bigint 8x)",
        {"bigint": 8.0},
        offload_overhead_fraction=0.01,
    ),
]


def test_accel_whatif(benchmark, capsys):
    profiles = profile_run("bn128", 512)

    def project_all():
        return [project_protocol(profiles, spec) for spec in ACCELERATORS]

    reports = benchmark.pedantic(project_all, rounds=1, iterations=1)

    rows = []
    for report in reports:
        proving = report.per_stage["proving"]
        rows.append([
            report.accelerator,
            proving.module_speedup,
            proving.stage_speedup,
            report.protocol_speedup,
            report.dominant_residual_stage,
        ])
    with capsys.disabled():
        print()
        print(render_table(
            ["accelerator", "module x", "proving-stage x", "protocol x",
             "new bottleneck"],
            rows, title="[Accel] What-if projections over traced profiles",
            floatfmt=".1f",
        ))

    pipezk, gpu, crt = reports
    # The headline gap: hundreds-x modules, single/low-double-digit protocol.
    assert pipezk.per_stage["proving"].module_speedup > 20
    assert pipezk.protocol_speedup < 30
    assert pipezk.protocol_speedup < pipezk.per_stage["proving"].module_speedup / 2
    # Monotonicity across accelerator strength.
    assert pipezk.protocol_speedup > gpu.protocol_speedup > crt.protocol_speedup
    # Once crypto is accelerated, a non-crypto stage dominates.
    assert pipezk.dominant_residual_stage in ("witness", "compile")

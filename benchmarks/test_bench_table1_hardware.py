"""Table I — hardware configuration of the experimental setup.

Not a measurement: this regenerates the machine-description table the
analyses run against and checks it against the paper's published
specifications (cores, SMT, DRAM type/channels/bandwidth, LLC).
"""

from repro.harness.report import render_table
from repro.perf.cpu import ALL_CPUS


def test_table1_hardware(benchmark, capsys):
    def build():
        rows = []
        for spec in ALL_CPUS:
            rows.append([
                spec.name, spec.cores_perf, spec.cores_eff, spec.smt_threads,
                spec.dram_type, spec.dram_channels, spec.mem_bw_gbps,
                f"{spec.llc_kib // 1024} MiB",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_table(
        ["CPU", "#Cores (Perf)", "#Cores (Eff)", "#SMT", "Type",
         "#DRAM Ch", "Mem BW (GB/s)", "LLC"],
        rows, title="[Table1] Hardware configuration (modeled)",
    )
    with capsys.disabled():
        print()
        print(text)

    by_name = {r[0]: r for r in rows}
    # Paper Table I values.
    assert by_name["i7-8650U"][1:4] == [4, 0, 8]
    assert by_name["i5-11400"][1:4] == [6, 0, 12]
    assert by_name["i9-13900K"][1:4] == [8, 16, 32]
    assert by_name["i7-8650U"][4:7] == ["LPDDR3", 2, 34.1]
    assert by_name["i5-11400"][4:7] == ["DDR4", 1, 17.0]
    assert by_name["i9-13900K"][4:7] == ["DDR5", 4, 89.6]
    assert by_name["i7-8650U"][7] == "8 MiB"
    assert by_name["i5-11400"][7] == "12 MiB"
    assert by_name["i9-13900K"][7] == "36 MiB"

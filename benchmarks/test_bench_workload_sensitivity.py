"""Extension bench — does the characterization generalize beyond the
paper's exponentiation circuit?

The paper argues its strategies "offer insights to guide future designs"
for other ZKP programs (Section IV-A).  This bench re-runs the framework
on two different workload classes — a Poseidon hash chain and a batch of
bit-decomposition range checks — and asserts that the paper's stage-level
conclusions are workload-independent:

- proving stays compute-intensive, bigint-dominated, backend-bound on
  the i9 and highly parallel;
- witness stays front-end bound everywhere and the most control-heavy;
- setup stays the load-dominated heavyweight with the lowest MPKI.
"""

import pytest

from repro.harness.report import render_table
from repro.harness.runner import profile_run

SIZE = 512
WORKLOADS = ("exponentiate", "poseidon", "range")


def test_workload_sensitivity(benchmark, capsys):
    def run_all():
        return {w: profile_run("bn128", SIZE, workload=w) for w in WORKLOADS}

    by_workload = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for w, profs in by_workload.items():
        proving = profs["proving"]
        witness = profs["witness"]
        rows.append([
            w,
            proving.opcode_mix.intensive,
            proving.functions.top(1)[0].function,
            proving.view("i9-13900K").topdown.classification,
            f"{100 * proving.split.parallel_fraction:.0f}%",
            witness.view("i9-13900K").topdown.classification,
            f"{witness.opcode_mix.control_pct:.1f}%",
        ])
    with capsys.disabled():
        print()
        print(render_table(
            ["workload", "prove mix", "prove hotspot", "prove i9 topdown",
             "prove par", "witness i9 topdown", "witness ctrl%"],
            rows, title=f"[Sensitivity] characterization across workloads (n~{SIZE})",
        ))

    for w, profs in by_workload.items():
        proving, witness, setup = profs["proving"], profs["witness"], profs["setup"]
        # Proving conclusions hold for every workload.
        assert proving.opcode_mix.intensive == "compute", w
        assert proving.functions.top(1)[0].function == "bigint", w
        assert proving.view("i9-13900K").topdown.classification == "backend", w
        assert proving.split.parallel_fraction > 0.6, w
        # Witness conclusions hold.
        for cpu in ("i7-8650U", "i5-11400", "i9-13900K"):
            assert witness.view(cpu).topdown.classification == "frontend", (w, cpu)
        ctrl = {s: profs[s].opcode_mix.control_pct for s in profs}
        assert ctrl["witness"] == max(ctrl.values()), w
        # Setup conclusions hold.
        assert setup.loads > 5 * witness.loads, w
        for cpu in ("i7-8650U", "i5-11400", "i9-13900K"):
            mpki = {s: profs[s].view(cpu).load_mpki for s in profs}
            assert mpki["setup"] == min(mpki.values()), (w, cpu)


def test_workload_registry_rejects_unknown(benchmark):
    def check():
        with pytest.raises(ValueError, match="unknown workload"):
            profile_run("bn128", 64, workload="sha3")
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

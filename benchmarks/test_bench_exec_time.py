"""E0 — execution-time breakdown (Section IV-B).

Paper: "the setup (76.1%) is the most time-consuming stage, followed by the
proving (13.4%) stage across all constraint sizes".

Shape asserted here: setup is the largest stage and proving the largest of
the remaining size-scaling stages.  The absolute shares deviate (our
fixed-base setup is more efficient than snarkjs' ptau pipeline; see
EXPERIMENTS.md) but the ordering — the paper's actionable finding — holds.
"""

from repro.harness.experiments import exec_time_breakdown


def test_exec_time_breakdown(benchmark, sweep, emit):
    result = benchmark.pedantic(
        lambda: exec_time_breakdown(sweep), rounds=1, iterations=1
    )
    emit(result)
    shares = result.extras["shares"]

    # Setup dominates everything.
    assert shares["setup"] == max(shares.values())
    # Proving is the second of the stages whose cost scales with the
    # circuit (compile/setup/proving) and beats compile handily.
    assert shares["proving"] > shares["compile"]
    assert shares["setup"] > 2 * shares["compile"]
    # Sanity: a complete partition.
    assert abs(sum(shares.values()) - 100.0) < 1e-6

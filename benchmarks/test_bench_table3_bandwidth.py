"""Table III — maximum memory bandwidth per stage (avg over CPUs + sizes).

Paper: proving 25.0 / setup 23.4 / compile 10.3 / verifying 5.2 /
witness 2.7 GB/s on BN (BLS similar).  Claims asserted:

- proving and setup demand the highest bandwidth (Key Takeaway 2);
- both are roughly 2x the compile stage;
- witness is the lowest; verifying sits just above it.
"""

from repro.harness.experiments import table3_bandwidth


def test_table3_bandwidth(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: table3_bandwidth(sweep), rounds=1, iterations=1)
    emit(result)
    bw = result.extras["bandwidth"]

    for ec in ("BN", "BLS"):
        col = {stage: bw[(ec, stage)] for stage in
               ("compile", "setup", "witness", "proving", "verifying")}
        # Proving tops the table; setup right behind.
        assert col["proving"] == max(col.values()), (ec, col)
        assert col["setup"] > col["compile"], ec
        # Proving at least ~1.2x compile (paper: ~2.4x).
        assert col["proving"] > 1.2 * col["compile"], ec
        # Witness is the lowest consumer.
        assert col["witness"] == min(col.values()), (ec, col)
        assert col["verifying"] > col["witness"], ec
        # Magnitudes: single-digit to low-double-digit GB/s, under the
        # fastest machine's 89.6 GB/s ceiling.
        assert all(0 < v < 89.6 for v in col.values()), ec

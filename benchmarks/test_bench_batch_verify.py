"""Extension bench — batch verification throughput.

The paper's introduction motivates ZKP efficiency with servers processing
"millions of transactions"; on the verifier side the standard answer is
batch verification (k+3 Miller loops + 1 final exponentiation for k
proofs, vs 4k + k individually).  This bench measures the realized
speedup on our pairing substrate and checks it grows with the batch.
"""

import random
import time

import pytest

from repro.curves import BN128
from repro.groth16 import generate_witness, prove, public_inputs, setup, verify
from repro.groth16.batch import batch_verify
from repro.harness.report import render_table
from tests.conftest import make_pow_circuit


@pytest.fixture(scope="module")
def proofs():
    circ, _ = make_pow_circuit(BN128, 8)
    rng = random.Random(71)
    pk, vk = setup(BN128, circ, rng)
    items = []
    for x in range(2, 14):
        w = generate_witness(circ, {"x": x})
        items.append((prove(pk, circ, w, rng), public_inputs(circ, w)))
    return vk, items


def test_batch_verification_speedup(benchmark, proofs, capsys):
    vk, items = proofs

    def measure():
        out = []
        for k in (2, 6, 12):
            batch = items[:k]
            t0 = time.perf_counter()
            for proof, publics in batch:
                assert verify(vk, proof, publics)
            t_ind = time.perf_counter() - t0
            t0 = time.perf_counter()
            assert batch_verify(vk, batch, random.Random(k))
            t_batch = time.perf_counter() - t0
            out.append((k, t_ind, t_batch, t_ind / t_batch))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(
            ["batch size", "individual (s)", "batched (s)", "speedup"],
            [list(r) for r in results],
            title="[Batch] Groth16 batch verification",
            floatfmt=".3f",
        ))

    speedups = {k: s for k, _, _, s in results}
    # Batching wins, and wins more as the batch grows.
    assert speedups[6] > 1.5
    assert speedups[12] > speedups[2]


def test_batch_rejects_poisoned_batch_quickly(benchmark, proofs):
    vk, items = proofs

    def poisoned():
        bad = list(items[:6])
        proof, publics = bad[3]
        bad[3] = (proof, [(publics[0] + 1) % BN128.fr.modulus])
        return batch_verify(vk, bad, random.Random(99))

    assert benchmark.pedantic(poisoned, rounds=1, iterations=1) is False

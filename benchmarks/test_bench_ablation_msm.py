"""Ablation — MSM algorithm and window-width choice (DESIGN.md section 6).

Compares the production Pippenger kernel against the naive double-and-add
baseline, and sweeps the window width, using the tracer's group-operation
counts as the (machine-independent) cost metric.  Validates that:

- Pippenger needs far fewer group operations than naive double-and-add;
- the auto-selected window is within 20% of the best swept window.
"""

import random

import pytest

from repro.curves import BN128
from repro.msm import msm_naive, msm_pippenger, optimal_window
from repro.perf.trace import Tracer, tracing

N_POINTS = 192


@pytest.fixture(scope="module")
def inputs():
    rng = random.Random(4)
    g = BN128.g1
    points = [(g.generator * rng.randrange(1, 1 << 48)).to_affine()
              for _ in range(N_POINTS)]
    scalars = [rng.randrange(g.order) for _ in range(N_POINTS)]
    return g, points, scalars


def group_ops(fn):
    tr = Tracer()
    with tracing(tr):
        result = fn()
    counts = tr.total_counts()
    ops = sum(v for k, v in counts.items() if k.startswith(("ec_add", "ec_dbl")))
    return ops, result


def test_ablation_pippenger_vs_naive(benchmark, inputs, capsys):
    g, points, scalars = inputs
    naive_ops, expected = group_ops(lambda: msm_naive(g, points, scalars))
    pip_ops, got = benchmark.pedantic(
        lambda: group_ops(lambda: msm_pippenger(g, points, scalars)),
        rounds=1, iterations=1,
    )
    assert got == expected
    with capsys.disabled():
        print(f"\n[Ablation-MSM] naive={naive_ops} group ops, "
              f"pippenger={pip_ops} ({naive_ops / pip_ops:.1f}x fewer)")
    assert pip_ops * 3 < naive_ops


def test_ablation_window_sweep(benchmark, inputs, capsys):
    g, points, scalars = inputs

    def sweep():
        costs = {}
        for c in (2, 4, 6, 8, 10):
            ops, _ = group_ops(lambda: msm_pippenger(g, points, scalars, window=c))
            costs[c] = ops
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    auto = optimal_window(N_POINTS)
    auto_ops, _ = group_ops(lambda: msm_pippenger(g, points, scalars, window=auto))
    best = min(costs.values())
    with capsys.disabled():
        print(f"\n[Ablation-MSM] window sweep (group ops): {costs}; "
              f"auto c={auto} -> {auto_ops}")
    # The cost curve is U-shaped: extremes are worse than the middle.
    assert costs[2] > best and costs[10] > best
    # The heuristic window is near-optimal.
    assert auto_ops <= 1.2 * best

"""Fig. 5 — loads and stores per stage vs constraint size.

Paper claims asserted:

- setup and proving require orders of magnitude more loads than the
  witness and verifying stages (paper: ~1000x and ~100x at 2^10..2^18;
  the gap grows with size — at our scaled ladder we assert the gap and its
  growth rather than the end-scale magnitudes);
- witness and verifying loads/stores stay (near-)constant across sizes;
- loads and stores follow similar trends in most stages, with setup the
  outlier at roughly an order of magnitude more loads than stores.
"""

from repro.harness.experiments import fig5_loads_stores


def test_fig5_loads_stores(benchmark, sweep, emit, sizes):
    result = benchmark.pedantic(lambda: fig5_loads_stores(sweep), rounds=1, iterations=1)
    emit(result)
    loads = result.extras["loads"]
    stores = result.extras["stores"]
    small, big = sizes[0], sizes[-1]

    # Setup and proving dwarf witness/verifying at the top of the ladder.
    assert loads[("setup", big)] > 20 * loads[("witness", big)]
    assert loads[("setup", big)] > 10 * loads[("verifying", big)]
    assert loads[("proving", big)] > 5 * loads[("witness", big)]
    # ... and the gap widens with size (the paper's 1000x is the 2^18 end).
    ratio_small = loads[("setup", small)] / loads[("witness", small)]
    ratio_big = loads[("setup", big)] / loads[("witness", big)]
    assert ratio_big > 5 * ratio_small

    # Witness and verifying are flat across the sweep (<10% drift).
    for stage in ("witness", "verifying"):
        lo, hi = loads[(stage, small)], loads[(stage, big)]
        assert abs(hi - lo) / max(hi, lo) < 0.10, stage
        lo, hi = stores[(stage, small)], stores[(stage, big)]
        assert abs(hi - lo) / max(hi, lo) < 0.10, stage

    # Setup and proving grow steeply with size.
    assert loads[("setup", big)] > 8 * loads[("setup", small)]
    assert loads[("proving", big)] > 8 * loads[("proving", small)]

    # Load/store ratios: setup is the load-dominated outlier.
    setup_ratio = loads[("setup", big)] / stores[("setup", big)]
    assert setup_ratio > 4.0
    for stage in ("proving", "verifying", "witness", "compile"):
        ratio = loads[(stage, big)] / stores[(stage, big)]
        assert ratio < setup_ratio, stage
        assert ratio < 4.0, stage

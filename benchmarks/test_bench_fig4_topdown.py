"""Fig. 4 — top-down microarchitecture analysis.

Paper claims reproduced and asserted:

- the *witness* and *verifying* stages are front-end bound on ALL CPUs;
- *compile* is back-end bound on the i5 and i9 but front-end bound on the
  i7 (Key Takeaway 1's headline example);
- *setup* is front-end bound on the i5 and back-end bound on the i9;
- *proving* is front-end bound on the i7 and back-end bound on the i9
  (on the i5 it sits in the back-end/bad-speculation categories);
- BN128 and BLS12-381 produce similar classifications.
"""

from repro.harness.experiments import fig4_topdown
from repro.workflow import STAGES


def test_fig4_topdown(benchmark, sweep, emit):
    result = benchmark.pedantic(lambda: fig4_topdown(sweep), rounds=1, iterations=1)
    emit(result)
    majority = result.extras["majority"]

    # Witness and verifying: front-end bound everywhere.
    for stage in ("witness", "verifying"):
        for cpu in ("i7", "i5", "i9"):
            assert majority[(stage, cpu)] == "frontend", (stage, cpu)

    # Compile: FE on i7, BE on i5/i9.
    assert majority[("compile", "i7")] == "frontend"
    assert majority[("compile", "i5")] == "backend"
    assert majority[("compile", "i9")] == "backend"

    # Setup: FE on i5, BE on i9.
    assert majority[("setup", "i5")] == "frontend"
    assert majority[("setup", "i9")] == "backend"

    # Proving: FE on i7, BE (or bad speculation) on i5, BE on i9.
    assert majority[("proving", "i7")] == "frontend"
    assert majority[("proving", "i5")] in ("backend", "bad_speculation")
    assert majority[("proving", "i9")] == "backend"


def test_fig4_curves_agree(benchmark, sweep):
    """BN128 and BLS12-381 show similar behaviour (paper, Section IV-B)."""
    result = benchmark.pedantic(lambda: fig4_topdown(sweep), rounds=1, iterations=1)
    fractions = result.extras["fractions"]
    sizes = sorted({k[3] for k in fractions})
    for stage in STAGES:
        for cpu in ("i7", "i5", "i9"):
            for size in sizes:
                bn = fractions[(stage, cpu, "BN", size)]
                bls = fractions[(stage, cpu, "BLS", size)]
                for cat in bn:
                    assert abs(bn[cat] - bls[cat]) < 0.25, (stage, cpu, size, cat)


def test_fig4_fractions_are_distributions(benchmark, sweep):
    result = benchmark.pedantic(lambda: fig4_topdown(sweep), rounds=1, iterations=1)
    for key, frac in result.extras["fractions"].items():
        total = sum(frac.values())
        assert abs(total - 1.0) < 1e-9, key
        assert all(v >= 0 for v in frac.values()), key

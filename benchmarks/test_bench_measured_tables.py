"""Measured Tables IV/V and Fig. 5 analog: one real deep-profiled run.

The table4/table5 benchmarks assert the *modeled* artifacts; this one
runs the five-stage protocol under the real-interpreter deep profiler
(:mod:`repro.obs.prof`) and asserts the paper's shape claims against
what CPython actually executed — hot functions concentrate in the
arithmetic kernels, every stage's bytecode stream is data-flow heavy
(the interpreter analog of Table V's x86 stream), allocations peak in
the key-material stages — and closes the loop by running the drift
gate against the cost model (docs/PROFILING.md).

One deep-profiled run is ~50x slower than a bare one, so the size is
small and the single run is shared by every test in this module.
"""

import pytest

from repro.obs import drift, prof

SIZE = 8


@pytest.fixture(scope="module")
def profiled():
    _wf, profiler = prof.deep_profile_run("bn128", SIZE)
    return profiler


def reduce_once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


class TestMeasuredTable4:
    def test_crypto_stages_dominated_by_field_and_curve_kernels(
            self, benchmark, profiled):
        shares = reduce_once(benchmark, lambda: {
            s: profiled.stages[s].family_shares()
            for s in ("setup", "proving", "verifying")})
        for stage, fams in shares.items():
            crypto = sum(fams.get(f, 0.0)
                         for f in ("bigint", "ec", "msm", "pairing", "fft"))
            assert crypto > 0.7, (stage, fams)

    def test_verifying_hottest_function_is_extension_field_mul(
            self, benchmark, profiled):
        # The paper's Table IV: verification is pairing work, which in this
        # stack bottoms out in Fp2 tower multiplication.
        hottest = reduce_once(
            benchmark, lambda: profiled.stages["verifying"].functions[0])
        assert hottest.family == "bigint"
        assert "f2_mul" in hottest.qualname

    def test_compile_and_witness_are_compiler_family(
            self, benchmark, profiled):
        shares = reduce_once(benchmark, lambda: {
            s: profiled.stages[s].family_shares()
            for s in ("compile", "witness")})
        for stage, fams in shares.items():
            assert fams.get("compiler", 0.0) > 0.5, (stage, fams)


class TestMeasuredTable5:
    def test_interpreter_stream_is_data_flow_heavy(self, benchmark, profiled):
        # CPython's stack machine spends most opcodes moving operands;
        # every stage must classify as data-flow intensive.
        mixes = reduce_once(benchmark, lambda: {
            s: p.opcode_shares() for s, p in profiled.stages.items()})
        for stage, shares in mixes.items():
            assert shares["data"] > shares["compute"], (stage, shares)
            assert shares["data"] > shares["control"], (stage, shares)
            assert shares["other"] < 10.0, (stage, shares)

    def test_opcode_totals_scale_with_calls(self, benchmark, profiled):
        totals = reduce_once(benchmark, lambda: [
            sum(p.opcode_counts.values())
            for p in sorted(profiled.stages.values(), key=lambda p: p.calls)])
        assert totals == sorted(totals)


class TestMeasuredFig5:
    def test_allocation_peaks_in_key_material_stages(
            self, benchmark, profiled):
        alloc = reduce_once(benchmark, lambda: {
            s: p.alloc["peak_kb"] for s, p in profiled.stages.items()})
        assert alloc["proving"] > alloc["witness"]
        assert alloc["setup"] > alloc["compile"]


class TestDriftGate:
    def test_measured_run_agrees_with_model(self, benchmark, profiled):
        report = reduce_once(benchmark, lambda: drift.check_drift(
            profiled.measured_blocks(),
            drift.model_reference("bn128", SIZE),
            curve="bn128", size=SIZE, workload="exponentiate"))
        assert report.ok, "\n" + report.render_text()

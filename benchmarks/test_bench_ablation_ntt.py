"""Ablation — NTT pipeline vs naive Lagrange interpolation (DESIGN.md §6).

The prover's quotient construction uses an O(n log n) NTT round trip; the
alternative is O(n^2) Lagrange interpolation.  This bench measures both on
the same column-interpolation task and checks the crossover is decisively
in the NTT's favour at protocol sizes, while producing identical results.
"""

import random
import time

import pytest

from repro.fields import BN254_FR
from repro.poly import EvaluationDomain, Polynomial, intt

FR = BN254_FR


@pytest.fixture(scope="module")
def workload():
    n = 64
    domain = EvaluationDomain(FR, n)
    rng = random.Random(5)
    evals = [FR.rand(rng) for _ in range(n)]
    return domain, evals


def interpolate_ntt(domain, evals):
    return Polynomial(FR, intt(FR, evals, domain))


def interpolate_lagrange(domain, evals):
    return Polynomial.interpolate(FR, list(zip(domain.elements(), evals)))


def test_ablation_ntt_matches_lagrange(benchmark, workload):
    domain, evals = workload
    via_ntt = benchmark.pedantic(
        lambda: interpolate_ntt(domain, evals), rounds=1, iterations=1
    )
    via_lagrange = interpolate_lagrange(domain, evals)
    assert via_ntt == via_lagrange


def test_ablation_ntt_speedup(benchmark, workload, capsys):
    domain, evals = workload

    def measure():
        t0 = time.perf_counter()
        interpolate_ntt(domain, evals)
        t_ntt = time.perf_counter() - t0
        t0 = time.perf_counter()
        interpolate_lagrange(domain, evals)
        t_lagrange = time.perf_counter() - t0
        return t_ntt, t_lagrange

    t_ntt, t_lagrange = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n[Ablation-NTT] n=64: ntt={t_ntt * 1e3:.2f} ms, "
              f"lagrange={t_lagrange * 1e3:.1f} ms "
              f"({t_lagrange / t_ntt:.0f}x)")
    # O(n^2) vs O(n log n): an order of magnitude already at n=64.
    assert t_lagrange > 5 * t_ntt

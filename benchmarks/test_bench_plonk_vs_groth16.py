"""Extension bench — PLONK vs Groth16 proving time.

Section IV-A of the paper justifies profiling Groth16 with: "The proving
time of PlonK is twice as slow compared to Groth16."  Both schemes are
implemented here over the same curve and kernel substrate, so the claim is
directly reproducible: we prove the same statement family (a chain of
multiplications) at equal gate counts and compare wall-clock proving time.
"""

import random
import time

import pytest

from repro.circuit import CircuitBuilder, compile_circuit, gadgets
from repro.curves import BN128
from repro.groth16 import generate_witness, prove, public_inputs, setup, verify
from repro.plonk import PlonkCircuit, plonk_prove, plonk_setup, plonk_verify
from repro.plonk.circuit import compile_plonk

N_GATES = 128


@pytest.fixture(scope="module")
def groth16_session():
    builder = CircuitBuilder("pow", BN128.fr)
    x = builder.private_input("x")
    builder.output(gadgets.exponentiate(builder, x, N_GATES), "y")
    circuit = compile_circuit(builder)
    rng = random.Random(1)
    pk, vk = setup(BN128, circuit, rng)
    witness = generate_witness(circuit, {"x": 3})
    return circuit, pk, vk, witness


@pytest.fixture(scope="module")
def plonk_session():
    fr = BN128.fr
    circ = PlonkCircuit(fr)
    y = circ.public_input()
    x = circ.new_var()
    acc = x
    for _ in range(N_GATES - 1):
        acc = circ.mul_gate(acc, x)
    circ.assert_equal(acc, y)
    compiled = compile_plonk(circ)
    rng = random.Random(2)
    pre = plonk_setup(BN128, compiled, rng)
    values = circ.full_assignment({x: 3, y: pow(3, N_GATES, fr.modulus)})
    return circ, compiled, pre, values, y


def test_plonk_prover_slower_than_groth16(benchmark, groth16_session,
                                          plonk_session, capsys):
    circuit, pk, vk, witness = groth16_session
    _, _, pre, values, y = plonk_session

    def measure():
        t0 = time.perf_counter()
        g_proof = prove(pk, circuit, witness, random.Random(3))
        t_groth = time.perf_counter() - t0
        t0 = time.perf_counter()
        p_proof = plonk_prove(pre, values, random.Random(4))
        t_plonk = time.perf_counter() - t0
        return t_groth, t_plonk, g_proof, p_proof

    t_groth, t_plonk, g_proof, p_proof = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # Both proofs must actually verify.
    assert verify(vk, g_proof, public_inputs(circuit, witness))
    assert plonk_verify(pre, p_proof, [values[y]])

    ratio = t_plonk / t_groth
    with capsys.disabled():
        print(f"\n[PLONK vs Groth16] n={N_GATES} gates: "
              f"groth16 prove {t_groth * 1e3:.0f} ms, "
              f"plonk prove {t_plonk * 1e3:.0f} ms "
              f"({ratio:.1f}x slower; paper says ~2x)")
    # The paper's "twice as slow" claim, with headroom for environment noise.
    assert 1.3 <= ratio <= 8.0


def test_plonk_setup_is_universal_groth16_is_not(benchmark, plonk_session):
    """The structural difference behind the schemes' adoption trade-off:
    PLONK reuses one SRS across circuits, Groth16 cannot."""
    circ, compiled, pre, values, y = plonk_session

    def reuse_srs():
        fr = BN128.fr
        other = PlonkCircuit(fr)
        p = other.public_input()
        q = other.new_var()
        other.assert_equal(other.mul_gate(q, q), p)
        compiled2 = compile_plonk(other)
        pre2 = plonk_setup(BN128, compiled2, random.Random(7), srs=pre.kzg.srs)
        vals = other.full_assignment({q: 9, p: 81})
        proof = plonk_prove(pre2, vals, random.Random(8))
        return plonk_verify(pre2, proof, [81])

    assert benchmark.pedantic(reuse_srs, rounds=1, iterations=1)

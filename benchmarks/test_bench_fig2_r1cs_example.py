"""Fig. 2 — the worked compile example: ``y = x^3`` into R1CS.

Regenerates the paper's illustrative figure: three multiplication gates
(``w0 = x*1``, ``w1 = x*w0``, ``y = x*w1``) and their R1CS rows, and
checks the third constraint matches the L/R/O vectors the paper prints
(``L=[1,0,0], R=[0,1,0], O=[0,0,1]`` over ``Q=[x, w1, y]``).
"""

from repro.circuit import CircuitBuilder, compile_circuit, gadgets
from repro.curves import BN128
from repro.groth16 import generate_witness


def test_fig2_r1cs_example(benchmark, capsys):
    def build():
        b = CircuitBuilder("fig2", BN128.fr)
        x = b.private_input("x")
        y = gadgets.exponentiate(b, x, 3)
        b.output(y, "y")
        return compile_circuit(b)

    circuit = benchmark.pedantic(build, rounds=1, iterations=1)
    r1cs = circuit.r1cs

    with capsys.disabled():
        print("\n[Fig2] y = x^3 compiled to R1CS:")
        for j, cons in enumerate(r1cs.constraints):
            print(f"  constraint {j}: A={dict(cons.a)} B={dict(cons.b)} "
                  f"C={dict(cons.c)}")

    # Three constraints, exactly as the figure shows.
    assert r1cs.n_constraints == 3

    # Wires: 0=const, 1=x, 2=w0, 3=w1, 4=y.
    c0, c1, c2 = r1cs.constraints
    assert c0.a == {1: 1} and c0.b == {0: 1} and c0.c == {2: 1}   # w0 = x*1
    assert c1.a == {1: 1} and c1.b == {2: 1} and c1.c == {3: 1}   # w1 = x*w0
    # Third row: L picks x, R picks w1, O picks y — the paper's vectors.
    assert c2.a == {1: 1} and c2.b == {3: 1} and c2.c == {4: 1}

    # And the witness satisfies it: x=2 -> y=8.
    w = generate_witness(circuit, {"x": 2})
    assert r1cs.is_satisfied(w)
    assert w[4] == 8

"""Shared benchmark fixtures.

``sweep`` runs (or loads from the on-disk cache) the full profiled sweep the
paper's evaluation section is built on: both curves, the default constraint
ladder.  Every table/figure benchmark reduces this one sweep, prints the
regenerated artifact, and asserts the paper's shape claims.

Rendered artifacts are also written to ``results/`` next to this directory.
"""

import os

import pytest

from repro.harness.runner import DEFAULT_SIZES, profile_sweep

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "results")


@pytest.fixture(scope="session")
def sweep():
    """The full profiled sweep (cached on disk across bench processes)."""
    return profile_sweep(sizes=DEFAULT_SIZES)


@pytest.fixture(scope="session")
def sizes():
    return DEFAULT_SIZES


@pytest.fixture
def emit(capsys):
    """Print a rendered experiment and persist it under results/."""

    def _emit(result):
        text = result.render()
        with capsys.disabled():
            print()
            print(text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{result.ident.lower()}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        return text

    return _emit

# Convenience targets; see README.md.

.PHONY: install test lint codelint bench artifacts slow clean profile \
	perf-check chaos deep-profile drift-check refresh-baseline \
	parallel-test parallel-check parallel-report measured serve loadtest \
	pareto capacity-check refresh-capacity-baseline kernel-bench kernel-test

# Seeds for the chaos smoke (override: make chaos CHAOS_SEEDS="0 7 42").
CHAOS_SEEDS ?= 0 1 2 3

# Ledgers for the telemetry targets (override on the command line).
PROFILE_LEDGER ?= results/runs/profile.jsonl
BASELINE_LEDGER ?= results/runs/baseline-ci.jsonl
PERF_THRESHOLD ?= 500

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

lint:
	@command -v ruff >/dev/null 2>&1 && ruff check . \
		|| echo "ruff not installed; skipping source lint"
	PYTHONPATH=src python -m repro lint

# Codebase invariant lints (docs/CODELINT.md): worker-safety, determinism,
# error-discipline, guard-idiom, and deadline-poll checks over src/repro.
codelint:
	PYTHONPATH=src python -m repro codelint

bench:
	pytest benchmarks/ --benchmark-only

artifacts:
	python -m repro run all --out results/

slow:
	REPRO_SLOW=1 pytest tests/harness/test_large_scale.py

profile:
	PYTHONPATH=src python -m repro profile --curve bn128 --size 64 \
		--ledger $(PROFILE_LEDGER)

perf-check:
	PYTHONPATH=src python -m repro perf-check $(BASELINE_LEDGER) \
		$(PROFILE_LEDGER) --threshold $(PERF_THRESHOLD) --min-seconds 0.02

# Deep-profile one small cell (deterministic profiling is ~50x slower than
# the bare run, so keep --size small); writes flamegraph artifacts under
# results/prof/ and a record to results/runs/deep-profile.jsonl.
DEEP_SIZE ?= 8
deep-profile:
	PYTHONPATH=src python -m repro deep-profile --curve bn128 \
		--size $(DEEP_SIZE)

# Model-vs-measured drift gate (docs/PROFILING.md); exit 1 on drift.
drift-check:
	PYTHONPATH=src python -m repro report --compare-model \
		--curves bn128 --sizes 64

# Regenerate the committed CI baseline ledger after an intentional perf
# change (docs/PROFILING.md documents the workflow: run on a quiet
# machine, eyeball the diff, commit with the change that justified it).
refresh-baseline:
	rm -f $(BASELINE_LEDGER)
	PYTHONPATH=src python -m repro profile --curve bn128 --size 64 \
		--label ci-baseline --ledger $(BASELINE_LEDGER)

# Full serial<->parallel differential matrix plus the chaos-under-workers
# seeds (docs/PARALLELISM.md).  Wider than the tier-1 run: sizes 2^6..2^10,
# workers {1,2,4}, both curves.
parallel-test:
	REPRO_PARALLEL_FULL=1 PYTHONPATH=src pytest -x -q tests/parallel
	@for seed in 0 1 2; do \
		PYTHONPATH=src python -m repro chaos --seed $$seed --faults 3 \
			--size 64 --workers 2 || exit 1; \
	done

# Proving speedup gate: >= $(MIN_SPEEDUP)x at $(PAR_WORKERS) workers for
# 2^12 constraints; exits 0 with a SKIP message on machines with fewer
# cores than $(PAR_WORKERS).
PAR_WORKERS ?= 4
MIN_SPEEDUP ?= 1.3
parallel-check:
	PYTHONPATH=src python -m repro parallel-check --size 4096 \
		--workers $(PAR_WORKERS) --min-speedup $(MIN_SPEEDUP)

# MSM kernel speed gate (docs/KERNELS.md): optimized kernels (signed-digit
# + batch-affine, GLV) must beat the reference Pippenger by
# $(KERNEL_MIN_SPEEDUP)x on a 2^12 MSM with bit-identical results; exits 0
# with a SKIP message on single-core machines.
KERNEL_MIN_SPEEDUP ?= 1.5
kernel-bench:
	PYTHONPATH=src python -m repro kernel-bench --size 4096 \
		--min-speedup $(KERNEL_MIN_SPEEDUP)

# Full kernel differential matrix (docs/KERNELS.md): every optimized MSM
# kernel x curve x size x worker count must match the reference kernel
# bit-for-bit, proofs included.  Wider than the tier-1 run.
kernel-test:
	REPRO_KERNEL_FULL=1 PYTHONPATH=src pytest -x -q tests/msm tests/fields

# Parallel-efficiency report (docs/PARALLELISM.md): per-stage speedup,
# worker busy time, utilization, imbalance, dispatch overhead, and the
# Amdahl-fit drift, from a measured sweep with worker telemetry on.
REPORT_SIZE ?= 1024
REPORT_WORKERS ?= 1,2,4
parallel-report:
	PYTHONPATH=src python -m repro parallel-report --size $(REPORT_SIZE) \
		--workers $(REPORT_WORKERS) \
		--worker-trace results/parallel/worker_trace.json

# Measured Fig. 6 (strong scaling) on real worker processes; Fig. 7 and
# Table VI accept the same flags (docs/PARALLELISM.md).
MEASURED_WORKERS ?= 1,2,4
measured:
	PYTHONPATH=src python -m repro run fig6 --measured \
		--workers $(MEASURED_WORKERS)

# Foreground proving service with synthetic traffic; SIGTERM (or ^C)
# drains: admission closes, in-flight jobs finish, exit 0 (docs/SERVING.md).
SERVE_RPS ?= 8
SERVE_DURATION ?= 30
serve:
	PYTHONPATH=src python -m repro serve --size 64 --rps $(SERVE_RPS) \
		--duration $(SERVE_DURATION)

# Open-loop load smoke + chaos-under-load gate: p50/p95/p99 into the
# ledger's schema-v5 service block; every request must resolve typed
# even with seeded faults firing inside the live service.
LOAD_RPS ?= 16
LOAD_DURATION ?= 3
loadtest:
	PYTHONPATH=src python -m repro loadtest --rps $(LOAD_RPS) \
		--duration $(LOAD_DURATION) --size 32
	@for seed in 0 1 2; do \
		PYTHONPATH=src python -m repro chaos --under-load --seed $$seed \
			--faults 4 --size 32 --rps $(LOAD_RPS) --duration 1.5 \
			|| exit 1; \
	done
	PYTHONPATH=src pytest -x -q tests/serve

# Capacity sweep -> throughput-vs-p99 frontier + knee recommendation
# (docs/CAPACITY.md).  Resumable: interrupted sweeps replay finished
# cells from checksummed checkpoints; make pareto PARETO_FLAGS=--fresh
# discards them.
CAPACITY_LEDGER ?= results/runs/capacity.jsonl
CAPACITY_BASELINE ?= results/runs/baseline-capacity.jsonl
PARETO_FLAGS ?=
pareto:
	PYTHONPATH=src python -m repro pareto --workers 1,2 \
		--batch-windows 0,0.05 --queue-depths 8,32 --rps 8 \
		--duration 2 --size 32 --seed 7 \
		--ledger $(CAPACITY_LEDGER) $(PARETO_FLAGS)

# Capacity SLO gate: re-measure the committed baseline's configurations
# fresh and fail on p99 regression / throughput collapse / frontier
# collapse (docs/CAPACITY.md).  Loose threshold: serving latency is
# noisy across machines.
CAPACITY_THRESHOLD ?= 50
capacity-check:
	PYTHONPATH=src python -m repro capacity-check $(CAPACITY_BASELINE) \
		--threshold $(CAPACITY_THRESHOLD)

# Regenerate the committed capacity baseline after an intentional
# serving-layer change (same workflow as refresh-baseline).
refresh-capacity-baseline:
	rm -f $(CAPACITY_BASELINE)
	PYTHONPATH=src python -m repro pareto --workers 1 --batch-windows 0 \
		--queue-depths 8,32 --rps 8 --duration 2 --size 32 --seed 7 \
		--fresh --ledger $(CAPACITY_BASELINE)

chaos:
	@for seed in $(CHAOS_SEEDS); do \
		PYTHONPATH=src python -m repro chaos --seed $$seed --faults 4 \
			--size 32 || exit 1; \
	done
	PYTHONPATH=src pytest -x -q tests/resilience

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis results
	find . -name __pycache__ -type d -exec rm -rf {} +

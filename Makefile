# Convenience targets; see README.md.

.PHONY: install test bench artifacts slow clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

artifacts:
	python -m repro run all --out results/

slow:
	REPRO_SLOW=1 pytest tests/harness/test_large_scale.py

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis results
	find . -name __pycache__ -type d -exec rm -rf {} +

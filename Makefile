# Convenience targets; see README.md.

.PHONY: install test lint bench artifacts slow clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

lint:
	@command -v ruff >/dev/null 2>&1 && ruff check . \
		|| echo "ruff not installed; skipping source lint"
	PYTHONPATH=src python -m repro lint

bench:
	pytest benchmarks/ --benchmark-only

artifacts:
	python -m repro run all --out results/

slow:
	REPRO_SLOW=1 pytest tests/harness/test_large_scale.py

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis results
	find . -name __pycache__ -type d -exec rm -rf {} +
